package harness

import (
	"bytes"
	"strings"
	"testing"

	"pmwcas/internal/alloc"
	"pmwcas/internal/bwtree"
	"pmwcas/internal/core"
	"pmwcas/internal/nvram"
	"pmwcas/internal/skiplist"
)

func TestKeyGenDistributions(t *testing.T) {
	const span = 1000
	for _, d := range []Distribution{Uniform, Zipf, Sequential} {
		g := NewKeyGen(d, span, 1)
		seen := map[uint64]int{}
		for i := 0; i < 5000; i++ {
			k := g.Next()
			if k == 0 || k > span {
				t.Fatalf("%v: key %d out of [1,%d]", d, k, span)
			}
			seen[k]++
		}
		if len(seen) < 10 {
			t.Fatalf("%v: only %d distinct keys", d, len(seen))
		}
		if d == Zipf {
			// Skew check: the most popular key should dominate.
			maxN := 0
			for _, n := range seen {
				if n > maxN {
					maxN = n
				}
			}
			if maxN < 5000/10 {
				t.Fatalf("zipf max frequency %d looks uniform", maxN)
			}
		}
	}
}

func TestMixValidation(t *testing.T) {
	f := &fakeFactory{}
	_, err := Run(f, Workload{Threads: 1, OpsPer: 1, KeySpace: 10, Mix: Mix{Reads: 50}}, nil)
	if err == nil {
		t.Fatal("mix not summing to 100 accepted")
	}
	_, err = Run(f, Workload{Threads: 0, OpsPer: 1, KeySpace: 10, Mix: ReadOnly}, nil)
	if err == nil {
		t.Fatal("zero threads accepted")
	}
}

type fakeFactory struct{}

func (f *fakeFactory) Name() string          { return "fake" }
func (f *fakeFactory) NewOps(int64) IndexOps { return fakeOps{} }

type fakeOps struct{}

func (fakeOps) Insert(_, _ uint64) error                            { return nil }
func (fakeOps) Get(_ uint64) (uint64, error)                        { return 0, nil }
func (fakeOps) Update(_, _ uint64) error                            { return nil }
func (fakeOps) Delete(_ uint64) error                               { return nil }
func (fakeOps) Scan(_, _ uint64, _ func(uint64, uint64) bool) error { return nil }

func newSkipListEnv(t testing.TB, mode core.Mode) *skiplist.List {
	t.Helper()
	spec := []alloc.Class{
		{BlockSize: 64, Count: 1 << 14},
		{BlockSize: 128, Count: 1 << 12},
		{BlockSize: 256, Count: 1 << 10},
	}
	poolBytes := core.PoolSize(512, skiplist.MinDescriptorWords)
	aBytes := alloc.MetaSize(spec, 32)
	dev := nvram.New(poolBytes + aBytes + 1<<14)
	l := nvram.NewLayout(dev)
	poolReg := l.Carve(poolBytes)
	aReg := l.Carve(aBytes)
	roots := l.Carve(nvram.LineBytes)
	a, err := alloc.New(dev, aReg, spec, 32)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := core.NewPool(core.Config{
		Device: dev, Region: poolReg, DescriptorCount: 512,
		WordsPerDescriptor: skiplist.MinDescriptorWords, Mode: mode, Allocator: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	list, err := skiplist.New(skiplist.Config{Pool: pool, Allocator: a, Roots: roots})
	if err != nil {
		t.Fatal(err)
	}
	return list
}

func TestRunSkipListWorkload(t *testing.T) {
	list := newSkipListEnv(t, core.Persistent)
	f := &SkipListFactory{List: list, Label: "pmwcas-skiplist"}
	r, err := Run(f, Workload{
		Threads: 2, OpsPer: 500, KeySpace: 1 << 10,
		Dist: Uniform, Mix: UpdateHeavy, Preload: 256,
	}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Ops != 1000 || r.OpsPerSec <= 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestRunAllMixes(t *testing.T) {
	list := newSkipListEnv(t, core.Persistent)
	f := &SkipListFactory{List: list, Label: "sl"}
	for _, mix := range []Mix{ReadOnly, ReadHeavy, UpdateHeavy, InsertDelete, ScanHeavy} {
		if _, err := Run(f, Workload{
			Threads: 2, OpsPer: 200, KeySpace: 512,
			Dist: Zipf, Mix: mix, Preload: 128,
		}, nil); err != nil {
			t.Fatalf("mix %+v: %v", mix, err)
		}
	}
}

func TestRunMicroAllVariants(t *testing.T) {
	for _, v := range []MicroVariant{VariantPMwCAS, VariantMwCAS, VariantHTM} {
		r, err := RunMicro(MicroConfig{
			Variant: v, Threads: 2, OpsPer: 500,
			ArrayWords: 1024, WordsPerOp: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if r.Attempts != 1000 {
			t.Fatalf("%s: attempts = %d", v, r.Attempts)
		}
		if r.SuccessRate <= 0.5 {
			t.Fatalf("%s: low-contention success rate %.2f", v, r.SuccessRate)
		}
	}
}

func TestMicroPersistenceCostVisible(t *testing.T) {
	p, err := RunMicro(MicroConfig{
		Variant: VariantPMwCAS, Threads: 1, OpsPer: 500,
		ArrayWords: 4096, WordsPerOp: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := RunMicro(MicroConfig{
		Variant: VariantMwCAS, Threads: 1, OpsPer: 500,
		ArrayWords: 4096, WordsPerOp: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.FlushesPer <= v.FlushesPer {
		t.Fatalf("persistent flushes/op %.2f <= volatile %.2f", p.FlushesPer, v.FlushesPer)
	}
	if v.FlushesPer != 0 {
		t.Fatalf("volatile MwCAS issued %.2f flushes/op", v.FlushesPer)
	}
}

func TestMicroHighContentionLowersSuccess(t *testing.T) {
	low, err := RunMicro(MicroConfig{
		Variant: VariantPMwCAS, Threads: 4, OpsPer: 300,
		ArrayWords: 1 << 14, WordsPerOp: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunMicro(MicroConfig{
		Variant: VariantPMwCAS, Threads: 4, OpsPer: 300,
		ArrayWords: 8, WordsPerOp: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// On a single-CPU host goroutines rarely interleave mid-operation, so
	// contention may not manifest at all; the invariant that must hold is
	// that it can only hurt, never help. Race instrumentation serializes
	// memory accesses enough that the two configurations become
	// statistically indistinguishable — allow sampling noise there.
	slack := 0.0
	if raceEnabled {
		slack = 0.01
	}
	if high.SuccessRate > low.SuccessRate+slack {
		t.Fatalf("contention raised success rate: high %.3f vs low %.3f",
			high.SuccessRate, low.SuccessRate)
	}
	for _, r := range []MicroResult{low, high} {
		if r.SuccessRate < 0 || r.SuccessRate > 1 {
			t.Fatalf("success rate %v out of range", r.SuccessRate)
		}
	}
}

func TestRunMicroValidation(t *testing.T) {
	if _, err := RunMicro(MicroConfig{Variant: VariantPMwCAS}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := RunMicro(MicroConfig{
		Variant: "nope", Threads: 1, OpsPer: 1, ArrayWords: 8, WordsPerOp: 4,
	}); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := RunMicro(MicroConfig{
		Variant: VariantPMwCAS, Threads: 1, OpsPer: 1, ArrayWords: 2, WordsPerOp: 4,
	}); err == nil {
		t.Fatal("array smaller than op accepted")
	}
}

func TestRunRecovery(t *testing.T) {
	for _, inflight := range []int{0, 8, 64} {
		r, err := RunRecovery(RecoveryBench{PoolSize: 256, InFlight: inflight})
		if err != nil {
			t.Fatalf("in-flight %d: %v", inflight, err)
		}
		if !r.CorrectOK {
			t.Fatalf("in-flight %d: recovery left torn operations", inflight)
		}
		if r.Elapsed <= 0 {
			t.Fatalf("in-flight %d: zero elapsed", inflight)
		}
	}
}

func TestRunRecoveryValidation(t *testing.T) {
	if _, err := RunRecovery(RecoveryBench{PoolSize: 4, InFlight: 8}); err == nil {
		t.Fatal("in-flight > pool accepted")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("E5: skip list", "variant", "threads", "ops/s")
	tbl.Add("pmwcas", 4, 123456.7)
	tbl.Add("cas", 4, 234567.8)
	var buf bytes.Buffer
	tbl.Print(&buf)
	out := buf.String()
	for _, want := range []string{"E5: skip list", "variant", "pmwcas", "cas", "123456.70"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestThroughputFormat(t *testing.T) {
	cases := map[float64]string{
		1_500_000: "1.50M",
		12_340:    "12.3K",
		999:       "999",
	}
	for in, want := range cases {
		if got := Throughput(in); got != want {
			t.Fatalf("Throughput(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestOverheadPct(t *testing.T) {
	if got := OverheadPct(100, 97); got != 3 {
		t.Fatalf("OverheadPct = %v", got)
	}
	if got := OverheadPct(0, 1); got != 0 {
		t.Fatalf("OverheadPct(0,_) = %v", got)
	}
}

func TestReverseScannerInterface(t *testing.T) {
	list := newSkipListEnv(t, core.Persistent)
	f := &SkipListFactory{List: list, Label: "sl"}
	ops := f.NewOps(1)
	rs, ok := ops.(ReverseScanner)
	if !ok {
		t.Fatal("skip list ops do not implement ReverseScanner")
	}
	ops.Insert(5, 50)
	ops.Insert(6, 60)
	var keys []uint64
	rs.ScanReverse(1, 100, func(k, v uint64) bool { keys = append(keys, k); return true })
	if len(keys) != 2 || keys[0] != 6 || keys[1] != 5 {
		t.Fatalf("reverse scan = %v", keys)
	}
}

// Exercise the CAS-list and Bw-tree adapters end to end through Run.
func TestRunOtherFactories(t *testing.T) {
	spec := []alloc.Class{
		{BlockSize: 64, Count: 1 << 12},
		{BlockSize: 512, Count: 1 << 9},
		{BlockSize: 1024, Count: 1 << 8},
	}
	aBytes := alloc.MetaSize(spec, 16)
	poolBytes := core.PoolSize(256, 16)
	dev := nvram.New(aBytes + poolBytes + 1<<15)
	l := nvram.NewLayout(dev)
	poolReg := l.Carve(poolBytes)
	aReg := l.Carve(aBytes)
	mapReg := l.Carve(1 << 12)
	metaReg := l.Carve(nvram.LineBytes)
	a, err := alloc.New(dev, aReg, spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := core.NewPool(core.Config{
		Device: dev, Region: poolReg, DescriptorCount: 256,
		WordsPerDescriptor: 16, Mode: core.Volatile, Allocator: a,
	})
	if err != nil {
		t.Fatal(err)
	}

	cl, err := skiplist.NewCAS(dev, a, pool.Epochs())
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Threads: 2, OpsPer: 150, KeySpace: 256, Dist: Uniform,
		Mix: Mix{Reads: 40, Inserts: 20, Updates: 20, Deletes: 10, Scans: 10}, Preload: 64}
	if r, err := Run(&CASListFactory{List: cl, Label: "cas"}, w, nil); err != nil || r.Ops == 0 {
		t.Fatalf("CAS list run: %+v, %v", r, err)
	}

	tree, err := bwtree.New(bwtree.Config{
		Pool: pool, Allocator: a, Mapping: mapReg, Meta: metaReg,
		SMO: bwtree.SMOSingleCAS, LeafCapacity: 16, InnerCapacity: 8, ConsolidateAfter: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r, err := Run(&BwTreeFactory{Tree: tree, Label: "bw"}, w, nil); err != nil || r.Ops == 0 {
		t.Fatalf("bwtree run: %+v, %v", r, err)
	}
}
