package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pmwcas/internal/core"
	"pmwcas/internal/htm"
	"pmwcas/internal/nvram"
)

// MicroVariant names a multi-word-CAS implementation under test in the
// microbenchmarks (E1-E4).
type MicroVariant string

// Microbenchmark variants.
const (
	// VariantPMwCAS is the persistent multi-word CAS.
	VariantPMwCAS MicroVariant = "pmwcas"
	// VariantMwCAS is the identical code with persistence disabled.
	VariantMwCAS MicroVariant = "mwcas"
	// VariantHTM is the simulated hardware-transactional MwCAS.
	VariantHTM MicroVariant = "htm"
)

// MicroConfig describes one microbenchmark cell.
type MicroConfig struct {
	Variant    MicroVariant
	Threads    int
	OpsPer     int // attempts per thread
	ArrayWords int // shared word-array size — the contention knob
	WordsPerOp int // words per MwCAS (descriptor size)

	FlushLatency time.Duration // simulated CLWB cost (pmwcas only)
	HTM          htm.Config    // HTM knobs (htm only)

	// YieldEvery interleaves logical threads every N device accesses so
	// contention manifests on hosts with fewer cores than threads.
	YieldEvery int

	Descriptors int // pool size; default 4 x threads (paper §5.1)
}

// MicroResult is one measured microbenchmark cell.
type MicroResult struct {
	Variant     MicroVariant
	Threads     int
	Attempts    int
	Succeeded   int
	Elapsed     time.Duration
	OpsPerSec   float64 // successful operations per second
	SuccessRate float64
	FlushesPer  float64 // device flushes per attempt
	HelpsPer    float64 // cooperative helps per attempt (descriptor modes)
	HTMStats    htm.Stats
}

// RunMicro executes one microbenchmark cell: each thread repeatedly picks
// WordsPerOp distinct random words from the shared array, reads them, and
// attempts to advance each by one in a single multi-word CAS. Failed
// attempts are counted, not retried — the success rate under contention
// is itself a measurement.
func RunMicro(cfg MicroConfig) (MicroResult, error) {
	if cfg.Threads <= 0 || cfg.OpsPer <= 0 {
		return MicroResult{}, fmt.Errorf("harness: bad micro config %+v", cfg)
	}
	if cfg.ArrayWords < cfg.WordsPerOp {
		return MicroResult{}, fmt.Errorf("harness: array %d < words per op %d", cfg.ArrayWords, cfg.WordsPerOp)
	}
	if cfg.Descriptors == 0 {
		cfg.Descriptors = 4 * cfg.Threads
	}

	var opts []nvram.Option
	if cfg.FlushLatency > 0 {
		opts = append(opts, nvram.WithFlushLatency(cfg.FlushLatency))
	}
	if cfg.YieldEvery > 0 {
		opts = append(opts, nvram.WithYield(cfg.YieldEvery))
	}
	poolBytes := core.PoolSize(cfg.Descriptors, cfg.WordsPerOp)
	dev := nvram.New(poolBytes+uint64(cfg.ArrayWords)*nvram.WordSize+1<<12, opts...)
	layout := nvram.NewLayout(dev)
	poolReg := layout.Carve(poolBytes)
	arrReg := layout.Carve(uint64(cfg.ArrayWords) * nvram.WordSize)
	dev.FlushAll()

	addrAt := func(i int) nvram.Offset { return arrReg.Base + nvram.Offset(i)*nvram.WordSize }

	res := MicroResult{Variant: cfg.Variant, Threads: cfg.Threads}
	succ := make([]int, cfg.Threads)
	var wg sync.WaitGroup
	flushes0 := dev.Stats().Flushes

	switch cfg.Variant {
	case VariantPMwCAS, VariantMwCAS:
		mode := core.Persistent
		if cfg.Variant == VariantMwCAS {
			mode = core.Volatile
		}
		pool, err := core.NewPool(core.Config{
			Device: dev, Region: poolReg,
			DescriptorCount: cfg.Descriptors, WordsPerDescriptor: cfg.WordsPerOp,
			Mode: mode,
		})
		if err != nil {
			return MicroResult{}, err
		}
		start := time.Now()
		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				h := pool.NewHandle()
				rng := rand.New(rand.NewSource(int64(t)*6151 + 3))
				idx := make([]int, cfg.WordsPerOp)
				for i := 0; i < cfg.OpsPer; i++ {
					pickDistinct(rng, cfg.ArrayWords, idx)
					d, err := h.AllocateDescriptor(0)
					if err != nil {
						pool.ReclaimPause()
						continue
					}
					okBuild := true
					for _, w := range idx {
						a := addrAt(w)
						v := h.Read(a)
						if d.AddWord(a, v, v+1) != nil {
							okBuild = false
							break
						}
					}
					if !okBuild {
						d.Discard()
						continue
					}
					if ok, _ := d.Execute(); ok {
						succ[t]++
					}
				}
			}(t)
		}
		wg.Wait()
		res.Elapsed = time.Since(start)
		s := pool.Stats()
		res.HelpsPer = float64(s.Helps) / float64(cfg.Threads*cfg.OpsPer)

	case VariantHTM:
		tm := htm.New(dev, cfg.HTM)
		start := time.Now()
		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				h := tm.NewHandle(int64(t)*6151 + 3)
				rng := rand.New(rand.NewSource(int64(t)*12289 + 5))
				idx := make([]int, cfg.WordsPerOp)
				addrs := make([]nvram.Offset, cfg.WordsPerOp)
				olds := make([]uint64, cfg.WordsPerOp)
				news := make([]uint64, cfg.WordsPerOp)
				for i := 0; i < cfg.OpsPer; i++ {
					pickDistinct(rng, cfg.ArrayWords, idx)
					for j, w := range idx {
						addrs[j] = addrAt(w)
						olds[j] = h.Read(addrs[j])
						news[j] = olds[j] + 1
					}
					if h.MwCAS(addrs, olds, news) {
						succ[t]++
					}
				}
			}(t)
		}
		wg.Wait()
		res.Elapsed = time.Since(start)
		res.HTMStats = tm.Stats()

	default:
		return MicroResult{}, fmt.Errorf("harness: unknown variant %q", cfg.Variant)
	}

	res.Attempts = cfg.Threads * cfg.OpsPer
	for _, s := range succ {
		res.Succeeded += s
	}
	res.SuccessRate = float64(res.Succeeded) / float64(res.Attempts)
	res.OpsPerSec = float64(res.Succeeded) / res.Elapsed.Seconds()
	res.FlushesPer = float64(dev.Stats().Flushes-flushes0) / float64(res.Attempts)
	return res, nil
}

// pickDistinct fills idx with distinct values in [0, n).
func pickDistinct(rng *rand.Rand, n int, idx []int) {
	for i := range idx {
	retry:
		v := rng.Intn(n)
		for j := 0; j < i; j++ {
			if idx[j] == v {
				goto retry
			}
		}
		idx[i] = v
	}
}

// RecoveryBench measures single-threaded recovery time as a function of
// in-flight operations at the crash (experiment E7).
type RecoveryBench struct {
	PoolSize int
	InFlight int // descriptors mid-operation when the crash hits
	Words    int // words per descriptor
}

// RecoveryResult reports one recovery measurement.
type RecoveryResult struct {
	PoolSize  int
	InFlight  int
	Elapsed   time.Duration
	Repaired  int
	PerDesc   time.Duration // elapsed / pool size (scan cost dominates)
	CorrectOK bool
}

// RunRecovery builds a pool, freezes InFlight operations mid-Phase-1 (by
// crashing the device while their descriptor pointers are installed),
// then measures a full recovery pass.
func RunRecovery(cfg RecoveryBench) (RecoveryResult, error) {
	if cfg.Words == 0 {
		cfg.Words = 4
	}
	if cfg.InFlight > cfg.PoolSize {
		return RecoveryResult{}, fmt.Errorf("harness: in-flight %d > pool %d", cfg.InFlight, cfg.PoolSize)
	}
	poolBytes := core.PoolSize(cfg.PoolSize, cfg.Words)
	words := cfg.InFlight*cfg.Words + 8
	dev := nvram.New(poolBytes + uint64(words)*nvram.WordSize + 1<<12)
	layout := nvram.NewLayout(dev)
	poolReg := layout.Carve(poolBytes)
	arrReg := layout.Carve(uint64(words) * nvram.WordSize)
	dev.FlushAll()

	pool, err := core.NewPool(core.Config{
		Device: dev, Region: poolReg,
		DescriptorCount: cfg.PoolSize, WordsPerDescriptor: cfg.Words,
		Mode: core.Persistent,
	})
	if err != nil {
		return RecoveryResult{}, err
	}
	h := pool.NewHandle()

	// Freeze InFlight operations mid-flight: run each under a failpoint
	// that cuts the power during Phase 2, leaving descriptor pointers in
	// some target words and a mix of Undecided/Succeeded descriptors.
	for i := 0; i < cfg.InFlight; i++ {
		base := arrReg.Base + nvram.Offset(i*cfg.Words)*nvram.WordSize
		d, err := h.AllocateDescriptor(0)
		if err != nil {
			return RecoveryResult{}, err
		}
		for w := 0; w < cfg.Words; w++ {
			if err := d.AddWord(base+nvram.Offset(w)*nvram.WordSize, 0, uint64(i+1)); err != nil {
				return RecoveryResult{}, err
			}
		}
		stopAt := 6 + i%10 // vary the interruption point across descriptors
		step := 0
		func() {
			defer func() { recover() }()
			dev.SetHook(func(op string, off nvram.Offset) {
				step++
				if step == stopAt {
					panic("cut")
				}
			})
			defer dev.SetHook(nil)
			d.Execute()
		}()
		dev.SetHook(nil)
	}

	dev.Crash()
	pool2, err := core.NewPool(core.Config{
		Device: dev, Region: poolReg,
		DescriptorCount: cfg.PoolSize, WordsPerDescriptor: cfg.Words,
		Mode: core.Persistent,
	})
	if err != nil {
		return RecoveryResult{}, err
	}
	start := time.Now()
	st, err := pool2.Recover()
	elapsed := time.Since(start)
	if err != nil {
		return RecoveryResult{}, err
	}

	// Verify all-or-nothing on every frozen operation.
	ok := true
	h2 := pool2.NewHandle()
	for i := 0; i < cfg.InFlight; i++ {
		base := arrReg.Base + nvram.Offset(i*cfg.Words)*nvram.WordSize
		first := h2.Read(base)
		for w := 1; w < cfg.Words; w++ {
			//lint:allow guardfact — post-recovery verification is single-threaded; nothing reclaims while it runs (§4.4)
			if h2.Read(base+nvram.Offset(w)*nvram.WordSize) != first {
				ok = false
			}
		}
	}
	return RecoveryResult{
		PoolSize:  cfg.PoolSize,
		InFlight:  cfg.InFlight,
		Elapsed:   elapsed,
		Repaired:  st.RolledForward + st.RolledBack + st.Reclaimed,
		PerDesc:   elapsed / time.Duration(cfg.PoolSize),
		CorrectOK: ok,
	}, nil
}
