package pmwcas

// One testing.B benchmark per experiment in DESIGN.md's index (E1-E9).
// These are the micro-scale versions of cmd/experiments: quick, b.N
// driven, with custom metrics (flushes/op, success rate, recovery µs)
// reported alongside ns/op. For the full paper-style tables, run:
//
//	go run ./cmd/experiments
//
// Absolute numbers are simulator numbers; see EXPERIMENTS.md for how to
// read them against the paper.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pmwcas/internal/harness"
	"pmwcas/internal/htm"
)

// microBench adapts one RunMicro cell to testing.B.
func microBench(b *testing.B, variant harness.MicroVariant, array, words int) {
	b.Helper()
	r, err := harness.RunMicro(harness.MicroConfig{
		Variant:    variant,
		Threads:    2,
		OpsPer:     b.N/2 + 1,
		ArrayWords: array,
		WordsPerOp: words,
		YieldEvery: 4,
		HTM:        htm.Config{},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.SuccessRate, "success")
	b.ReportMetric(r.FlushesPer, "flushes/op")
	b.ReportMetric(r.HelpsPer, "helps/op")
	b.ReportMetric(r.OpsPerSec, "committed/s")
}

// BenchmarkE1MicroLowContention — Fig. "MwCAS microbenchmark, low
// contention": 4-word MwCAS over a 100k-word array.
func BenchmarkE1MicroLowContention(b *testing.B) {
	for _, v := range []harness.MicroVariant{harness.VariantMwCAS, harness.VariantPMwCAS, harness.VariantHTM} {
		b.Run(string(v), func(b *testing.B) { microBench(b, v, 100000, 4) })
	}
}

// BenchmarkE2MicroHighContention — Fig. "MwCAS microbenchmark, high
// contention": 4-word MwCAS over an 8-word array.
func BenchmarkE2MicroHighContention(b *testing.B) {
	for _, v := range []harness.MicroVariant{harness.VariantMwCAS, harness.VariantPMwCAS, harness.VariantHTM} {
		b.Run(string(v), func(b *testing.B) { microBench(b, v, 8, 4) })
	}
}

// BenchmarkE3WordCount — cost versus words per descriptor.
func BenchmarkE3WordCount(b *testing.B) {
	for _, words := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("pmwcas-%dw", words), func(b *testing.B) {
			microBench(b, harness.VariantPMwCAS, 100000, words)
		})
	}
}

// BenchmarkE4FlushAnatomy — flushes and helps per op across contention.
func BenchmarkE4FlushAnatomy(b *testing.B) {
	for _, cell := range []struct {
		name  string
		array int
	}{{"low", 100000}, {"medium", 1024}, {"high", 8}} {
		b.Run(cell.name, func(b *testing.B) {
			microBench(b, harness.VariantPMwCAS, cell.array, 4)
		})
	}
}

// indexBenchStore builds a store for one index-bench variant.
func indexBenchStore(b *testing.B, mode Mode) *Store {
	b.Helper()
	s, err := Create(Config{
		Size:        128 << 20,
		Mode:        mode,
		Descriptors: 2048,
		MaxHandles:  64,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

const benchKeySpace = 1 << 16

// preloadIndex inserts keySpace/2 spread keys.
func preloadIndex(b *testing.B, ops harness.IndexOps) {
	b.Helper()
	for i := 0; i < benchKeySpace/2; i++ {
		k := uint64(i*2 + 1)
		if err := ops.Insert(k, k); err != nil {
			b.Fatal(err)
		}
	}
}

// runIndexBench drives b.N mixed operations through a factory.
func runIndexBench(b *testing.B, f harness.IndexFactory, mix harness.Mix, flushes func() uint64) {
	b.Helper()
	preloadIndex(b, f.NewOps(0))
	var seq atomic.Int64
	before := flushes()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ops := f.NewOps(seq.Add(1))
		kg := harness.NewKeyGen(harness.Uniform, benchKeySpace, seq.Add(1))
		i := 0
		for pb.Next() {
			k := kg.Next()
			v := uint64(i)&0xffff + 1 // varying write values (no-op updates would skew)
			switch {
			case i%100 < mix.Reads:
				ops.Get(k)
			case i%100 < mix.Reads+mix.Inserts:
				ops.Insert(k, v)
			case i%100 < mix.Reads+mix.Inserts+mix.Updates:
				if ops.Update(k, v) != nil {
					ops.Insert(k, v)
				}
			case i%100 < mix.Reads+mix.Inserts+mix.Updates+mix.Deletes:
				ops.Delete(k)
			default:
				ops.Scan(k, k+100, func(uint64, uint64) bool { return true })
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(flushes()-before)/float64(b.N), "flushes/op")
}

// BenchmarkE5SkipList — skip list variants under the paper's two mixes.
func BenchmarkE5SkipList(b *testing.B) {
	for _, mix := range []struct {
		name string
		mix  harness.Mix
	}{{"ReadHeavy", harness.ReadHeavy}, {"UpdateHeavy", harness.UpdateHeavy}} {
		b.Run("cas/"+mix.name, func(b *testing.B) {
			s := indexBenchStore(b, Volatile)
			cl, err := s.CASSkipList()
			if err != nil {
				b.Fatal(err)
			}
			runIndexBench(b, &harness.CASListFactory{List: cl, Label: "cas"}, mix.mix,
				func() uint64 { return s.Device().Stats().Flushes })
		})
		b.Run("mwcas/"+mix.name, func(b *testing.B) {
			s := indexBenchStore(b, Volatile)
			l, err := s.SkipList()
			if err != nil {
				b.Fatal(err)
			}
			runIndexBench(b, &harness.SkipListFactory{List: l, Label: "mwcas"}, mix.mix,
				func() uint64 { return s.Device().Stats().Flushes })
		})
		b.Run("pmwcas/"+mix.name, func(b *testing.B) {
			s := indexBenchStore(b, Persistent)
			l, err := s.SkipList()
			if err != nil {
				b.Fatal(err)
			}
			runIndexBench(b, &harness.SkipListFactory{List: l, Label: "pmwcas"}, mix.mix,
				func() uint64 { return s.Device().Stats().Flushes })
		})
	}
}

// BenchmarkE6BwTree — Bw-tree variants under the paper's two mixes.
func BenchmarkE6BwTree(b *testing.B) {
	for _, mix := range []struct {
		name string
		mix  harness.Mix
	}{{"ReadHeavy", harness.ReadHeavy}, {"UpdateHeavy", harness.UpdateHeavy}} {
		for _, variant := range []struct {
			name string
			mode Mode
			smo  SMOMode
		}{
			{"cas", Volatile, SMOSingleCAS},
			{"mwcas", Volatile, SMOPMwCAS},
			{"pmwcas", Persistent, SMOPMwCAS},
		} {
			b.Run(variant.name+"/"+mix.name, func(b *testing.B) {
				s := indexBenchStore(b, variant.mode)
				t, err := s.BwTree(BwTreeOptions{SMO: variant.smo})
				if err != nil {
					b.Fatal(err)
				}
				runIndexBench(b, &harness.BwTreeFactory{Tree: t, Label: variant.name}, mix.mix,
					func() uint64 { return s.Device().Stats().Flushes })
			})
		}
	}
}

// BenchmarkE7Recovery — recovery time versus pool size and in-flight ops.
func BenchmarkE7Recovery(b *testing.B) {
	for _, cell := range []struct {
		pool, inflight int
	}{{1024, 0}, {1024, 256}, {1024, 1024}, {4096, 1024}, {16384, 4096}} {
		b.Run(fmt.Sprintf("pool%d-inflight%d", cell.pool, cell.inflight), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunRecovery(harness.RecoveryBench{
					PoolSize: cell.pool, InFlight: cell.inflight,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !r.CorrectOK {
					b.Fatal("recovery left torn state")
				}
				total += float64(r.Elapsed.Microseconds())
			}
			b.ReportMetric(total/float64(b.N), "recovery-µs")
		})
	}
}

// BenchmarkE8ReverseScan — reverse range scans: doubly-linked vs the
// baseline's validate-and-repair prev traversal.
func BenchmarkE8ReverseScan(b *testing.B) {
	const scanLen = 100
	b.Run("cas-fixup", func(b *testing.B) {
		s := indexBenchStore(b, Volatile)
		cl, err := s.CASSkipList()
		if err != nil {
			b.Fatal(err)
		}
		h := cl.NewHandle(1)
		for i := 0; i < benchKeySpace/2; i++ {
			h.Insert(uint64(i*2+1), uint64(i))
		}
		kg := harness.NewKeyGen(harness.Uniform, benchKeySpace-scanLen, 9)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			from := kg.Next()
			h.ScanReverse(from, from+scanLen, func(SkipListEntry) bool { return true })
		}
	})
	b.Run("pmwcas-doubly-linked", func(b *testing.B) {
		s := indexBenchStore(b, Persistent)
		l, err := s.SkipList()
		if err != nil {
			b.Fatal(err)
		}
		h := l.NewHandle(1)
		for i := 0; i < benchKeySpace/2; i++ {
			h.Insert(uint64(i*2+1), uint64(i))
		}
		kg := harness.NewKeyGen(harness.Uniform, benchKeySpace-scanLen, 9)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			from := kg.Next()
			h.ScanReverse(from, from+scanLen, func(SkipListEntry) bool { return true })
		}
	})
}

// BenchmarkBlobKV — the extension layer: string-keyed puts/gets with
// out-of-line 128-byte values (not a paper experiment; included so the
// composition cost is visible next to the raw index numbers).
func BenchmarkBlobKV(b *testing.B) {
	val := make([]byte, 128)
	for i := range val {
		val[i] = byte(i)
	}
	b.Run("Put", func(b *testing.B) {
		s := indexBenchStore(b, Persistent)
		kv, err := s.BlobKV()
		if err != nil {
			b.Fatal(err)
		}
		h := kv.NewHandle(1)
		key := make([]byte, 7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := i % 4096 // bounded key set: puts become replacements
			key[0], key[1] = byte(n), byte(n>>8)
			if err := h.Put(key, val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Get", func(b *testing.B) {
		s := indexBenchStore(b, Persistent)
		kv, err := s.BlobKV()
		if err != nil {
			b.Fatal(err)
		}
		h := kv.NewHandle(1)
		key := make([]byte, 7)
		for n := 0; n < 4096; n++ {
			key[0], key[1] = byte(n), byte(n>>8)
			if err := h.Put(key, val); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := i % 4096
			key[0], key[1] = byte(n), byte(n>>8)
			if _, err := h.Get(key); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9Space — descriptor pool footprint (Appendix B shape). Not a
// timing benchmark: it reports bytes per descriptor for each word count.
func BenchmarkE9Space(b *testing.B) {
	for _, words := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("%dwords", words), func(b *testing.B) {
			s, err := Create(Config{
				Size: 16 << 20, Descriptors: 64, WordsPerDescriptor: words,
				BwTreeMappingSlots: 256,
			})
			if err != nil {
				b.Fatal(err)
			}
			h := s.PMwCASHandle()
			for i := 0; i < b.N; i++ {
				d, err := h.AllocateDescriptor(0)
				if err != nil {
					b.Fatal(err)
				}
				d.AddWord(s.RootWord(0), uint64(i), uint64(i+1))
				if ok, _ := d.Execute(); !ok {
					b.Fatal("Execute failed")
				}
			}
			per, total := poolSpace(words)
			b.ReportMetric(float64(per), "bytes/desc")
			b.ReportMetric(float64(total), "pool-bytes-16k")
		})
	}
}

// poolSpace mirrors core's descriptor sizing for reporting.
func poolSpace(words int) (per, total16k uint64) {
	per = uint64(64 + words*32)
	per = (per + 63) / 64 * 64
	return per, per * 16384
}
