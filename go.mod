module pmwcas

go 1.22
