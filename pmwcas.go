// Package pmwcas is a Go implementation of the system described in
// "Easy Lock-Free Indexing in Non-Volatile Memory" (Wang, Levandoski,
// Larson — ICDE 2018): a persistent multi-word compare-and-swap
// (PMwCAS) for NVRAM, together with the two lock-free range indexes the
// paper builds on it — a doubly-linked skip list and the Bw-tree — and
// every substrate they need (a simulated NVRAM device, epoch-based
// reclamation, and a crash-safe persistent allocator).
//
// # Quick start
//
//	store, err := pmwcas.Create(pmwcas.Config{})    // 64 MiB simulated NVRAM
//	h := store.PMwCASHandle()
//	d, _ := h.AllocateDescriptor(0)
//	d.AddWord(a1, old1, new1)
//	d.AddWord(a2, old2, new2)
//	ok, _ := d.Execute()                            // atomic + durable
//
// Indexes:
//
//	list, _ := store.SkipList()
//	lh := list.NewHandle(1)
//	lh.Insert(42, 420)
//
//	tree, _ := store.BwTree(pmwcas.BwTreeOptions{})
//	th := tree.NewHandle()
//	th.Insert(42, 420)
//
// Crash and recover (or persist to a file with Checkpoint/OpenFile):
//
//	store.Crash()          // power failure: unflushed state is gone
//	store.Recover()        // allocator + PMwCAS recovery; indexes need
//	                       // no recovery code of their own
//
// The same implementation runs volatile (Mode: Volatile) with identical
// APIs and no flushing — the paper's central engineering claim.
package pmwcas

import (
	"pmwcas/internal/alloc"
	"pmwcas/internal/blobkv"
	"pmwcas/internal/bwtree"
	"pmwcas/internal/core"
	"pmwcas/internal/epoch"
	"pmwcas/internal/hashtable"
	"pmwcas/internal/keycodec"
	"pmwcas/internal/nvram"
	"pmwcas/internal/pqueue"
	"pmwcas/internal/skiplist"
)

// Persistence mode of a store.
type Mode = core.Mode

// Modes.
const (
	// Persistent enables the full dirty-bit protocol and recovery.
	Persistent = core.Persistent
	// Volatile disables flushing: the identical code becomes a volatile
	// MwCAS (DRAM semantics).
	Volatile = core.Volatile
)

// Policy selects memory recycling behaviour for a PMwCAS word (paper
// Table 1).
type Policy = core.Policy

// Recycling policies.
const (
	PolicyNone             = core.PolicyNone
	PolicyFreeOne          = core.PolicyFreeOne
	PolicyFreeNewOnFailure = core.PolicyFreeNewOnFailure
	PolicyFreeOldOnSuccess = core.PolicyFreeOldOnSuccess
)

// Offset addresses a word on the store's NVRAM device.
type Offset = nvram.Offset

// Low-level PMwCAS API (paper §2.2).
type (
	// Handle is a per-goroutine PMwCAS context.
	Handle = core.Handle
	// Descriptor describes one in-flight PMwCAS operation.
	Descriptor = core.Descriptor
	// DescriptorView is the read-only view passed to finalize callbacks.
	DescriptorView = core.DescriptorView
	// FinalizeFunc is a registered finalize callback (§5.2).
	FinalizeFunc = core.FinalizeFunc
	// PoolStats counts PMwCAS pool activity.
	PoolStats = core.Stats
	// RecoveryStats summarizes a recovery pass.
	RecoveryStats = core.RecoveryStats
)

// Device is the simulated NVRAM device.
type Device = nvram.Device

// DeviceStats counts device operations (loads, stores, flushes, ...).
type DeviceStats = nvram.Stats

// SizeClass configures one allocator size class.
type SizeClass = alloc.Class

// SkipList is the paper's doubly-linked lock-free skip list (§6.1).
type SkipList = skiplist.List

// SkipListHandle is a per-goroutine skip list context.
type SkipListHandle = skiplist.Handle

// SkipListEntry is one key/value pair yielded by a scan.
type SkipListEntry = skiplist.Entry

// CASSkipList is the volatile single-word-CAS baseline skip list.
type CASSkipList = skiplist.CASList

// CASSkipListHandle is a per-goroutine baseline skip list context.
type CASSkipListHandle = skiplist.CASHandle

// Queue is a persistent lock-free FIFO queue — PMwCAS beyond indexing.
type Queue = pqueue.Queue

// QueueHandle is a per-goroutine queue context.
type QueueHandle = pqueue.Handle

// ErrQueueEmpty is returned by Dequeue on an empty queue.
var ErrQueueEmpty = pqueue.ErrEmpty

// BlobKV is the byte-string KV layer over the skip list: short string
// keys, arbitrary-length values stored as out-of-line records.
type BlobKV = blobkv.Store

// BlobKVHandle is a per-goroutine BlobKV context.
type BlobKVHandle = blobkv.Handle

// BwTree is the paper's lock-free B+-tree (§6.2).
type BwTree = bwtree.Tree

// BwTreeHandle is a per-goroutine Bw-tree context.
type BwTreeHandle = bwtree.Handle

// BwTreeEntry is one key/value pair yielded by a tree scan.
type BwTreeEntry = bwtree.Entry

// SMOMode selects the Bw-tree structure-modification protocol.
type SMOMode = bwtree.SMOMode

// Bw-tree SMO protocols.
const (
	// SMOPMwCAS installs each split/merge as one PMwCAS.
	SMOPMwCAS = bwtree.SMOPMwCAS
	// SMOSingleCAS is the classic multi-step protocol with help-along
	// (volatile only).
	SMOSingleCAS = bwtree.SMOSingleCAS
)

// HashTable is the persistent lock-free extendible hash table — the
// store's point-lookup index, unordered by construction.
type HashTable = hashtable.Table

// HashTableHandle is a per-goroutine hash table context.
type HashTableHandle = hashtable.Handle

// HashEntry is one key/value pair yielded by a hash table Range.
type HashEntry = hashtable.Entry

// EpochManager is the epoch-based reclamation manager shared by the
// PMwCAS pool and the indexes (§5.1).
type EpochManager = epoch.Manager

// EpochStats counts epoch clock advances and deferred/freed garbage.
type EpochStats = epoch.Stats

// Sentinel errors re-exported from the index packages.
var (
	ErrSkipListKeyExists = skiplist.ErrKeyExists
	ErrSkipListNotFound  = skiplist.ErrNotFound
	ErrBlobNotFound      = blobkv.ErrNotFound
	ErrBlobValueTooLarge = blobkv.ErrValueTooLarge
	ErrBwTreeKeyExists   = bwtree.ErrKeyExists
	ErrBwTreeNotFound    = bwtree.ErrNotFound
	ErrHashKeyExists     = hashtable.ErrKeyExists
	ErrHashNotFound      = hashtable.ErrNotFound
	ErrHashUnordered     = hashtable.ErrUnordered
	ErrPoolExhausted     = core.ErrPoolExhausted
)

// MaxSkipListKey is the largest insertable skip list key.
const MaxSkipListKey = skiplist.MaxKey - 1

// MaxBwTreeKey is the largest insertable Bw-tree key.
const MaxBwTreeKey = bwtree.MaxKey - 1

// MaxHashKey is the largest insertable hash table key.
const MaxHashKey = hashtable.MaxKey - 1

// Short string keys: an order-preserving codec packing byte strings of
// up to keycodec.MaxLen (7) bytes into the indexes' integer key domain,
// so lexicographic string order equals integer key order.

// EncodeKey packs a short byte-string key order-preservingly.
func EncodeKey(s []byte) (uint64, error) { return keycodec.Encode(s) }

// EncodeKeyString is EncodeKey for strings.
func EncodeKeyString(s string) (uint64, error) { return keycodec.EncodeString(s) }

// MustEncodeKey is EncodeKeyString panicking on oversize keys — for
// literals.
func MustEncodeKey(s string) uint64 { return keycodec.MustEncode(s) }

// DecodeKey recovers the byte string behind an encoded key.
func DecodeKey(k uint64) ([]byte, error) { return keycodec.Decode(k) }

// DecodeKeyString is DecodeKey returning a string.
func DecodeKeyString(k uint64) (string, error) { return keycodec.DecodeString(k) }

// KeyPrefixRange returns the [lo, hi] key range covering every string
// with the given prefix, for prefix scans.
func KeyPrefixRange(prefix []byte) (lo, hi uint64, err error) {
	return keycodec.PrefixRange(prefix)
}

// MaxEncodedKeyLen is the longest byte-string key EncodeKey accepts.
const MaxEncodedKeyLen = keycodec.MaxLen
