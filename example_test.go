package pmwcas_test

import (
	"fmt"

	"pmwcas"
)

// The core primitive: atomically (and durably) swing multiple words.
func Example() {
	store, err := pmwcas.Create(pmwcas.Config{Size: 16 << 20})
	if err != nil {
		panic(err)
	}
	h := store.PMwCASHandle()

	a, b := store.RootWord(0), store.RootWord(1)
	d, _ := h.AllocateDescriptor(0)
	d.AddWord(a, 0, 100)
	d.AddWord(b, 0, 200)
	ok, _ := d.Execute()
	fmt.Println("committed:", ok)
	fmt.Println(h.Read(a), h.Read(b))
	// Output:
	// committed: true
	// 100 200
}

// A failed PMwCAS changes nothing — all-or-nothing semantics.
func ExampleDescriptor_Execute_failure() {
	store, _ := pmwcas.Create(pmwcas.Config{Size: 16 << 20})
	h := store.PMwCASHandle()
	a, b := store.RootWord(0), store.RootWord(1)

	d, _ := h.AllocateDescriptor(0)
	d.AddWord(a, 0, 1)
	d.AddWord(b, 99 /* stale expectation */, 2)
	ok, _ := d.Execute()
	fmt.Println("committed:", ok)
	fmt.Println(h.Read(a), h.Read(b))
	// Output:
	// committed: false
	// 0 0
}

// Crash and recover: committed operations survive power failures.
func ExampleStore_Recover() {
	store, _ := pmwcas.Create(pmwcas.Config{Size: 16 << 20})
	h := store.PMwCASHandle()
	d, _ := h.AllocateDescriptor(0)
	d.AddWord(store.RootWord(0), 0, 42)
	d.Execute()

	store.Crash()
	store.Recover()
	fmt.Println(store.PMwCASHandle().Read(store.RootWord(0)))
	// Output:
	// 42
}

// The doubly-linked skip list: ordered operations and reverse scans.
func ExampleStore_SkipList() {
	store, _ := pmwcas.Create(pmwcas.Config{Size: 16 << 20})
	list, _ := store.SkipList()
	h := list.NewHandle(1)

	for _, k := range []uint64{30, 10, 20} {
		h.Insert(k, k*10)
	}
	h.ScanReverse(1, pmwcas.MaxSkipListKey, func(e pmwcas.SkipListEntry) bool {
		fmt.Println(e.Key, e.Value)
		return true
	})
	// Output:
	// 30 300
	// 20 200
	// 10 100
}

// The Bw-tree: a lock-free B+-tree with range scans.
func ExampleStore_BwTree() {
	store, _ := pmwcas.Create(pmwcas.Config{Size: 16 << 20})
	tree, _ := store.BwTree(pmwcas.BwTreeOptions{})
	h := tree.NewHandle()

	for k := uint64(1); k <= 5; k++ {
		h.Insert(k, k*k)
	}
	h.Scan(2, 4, func(e pmwcas.BwTreeEntry) bool {
		fmt.Println(e.Key, e.Value)
		return true
	})
	// Output:
	// 2 4
	// 3 9
	// 4 16
}

// String keys via the order-preserving codec.
func ExampleKeyPrefixRange() {
	store, _ := pmwcas.Create(pmwcas.Config{Size: 16 << 20})
	list, _ := store.SkipList()
	h := list.NewHandle(1)

	for _, sym := range []string{"ant", "ape", "bee"} {
		h.Insert(pmwcas.MustEncodeKey(sym), 1)
	}
	lo, hi, _ := pmwcas.KeyPrefixRange([]byte("a"))
	h.Scan(lo, hi, func(e pmwcas.SkipListEntry) bool {
		s, _ := pmwcas.DecodeKeyString(e.Key)
		fmt.Println(s)
		return true
	})
	// Output:
	// ant
	// ape
}

// Arbitrary-length values through the blob KV layer.
func ExampleStore_BlobKV() {
	store, _ := pmwcas.Create(pmwcas.Config{Size: 16 << 20})
	kv, _ := store.BlobKV()
	h := kv.NewHandle(1)

	h.Put([]byte("greet"), []byte("hello, nonvolatile world"))
	v, _ := h.Get([]byte("greet"))
	fmt.Println(string(v))
	// Output:
	// hello, nonvolatile world
}
