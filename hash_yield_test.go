package pmwcas

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"pmwcas/internal/hashtable"
)

// TestHashDirectoryReclaimRace pins the directory-word read protocol
// against the sealed-bucket reclaim PMwCAS. Directory entries are
// multi-word targets (the reclaim descriptor is installed in the planted
// entry, and straggler helpers can transiently re-install it), so every
// directory read must detect descriptor pointers and fall back to the
// helping protocol read. Before the fix, locate read entries with a
// PCAS-level hint read that returned an in-flight descriptor pointer
// verbatim and dereferenced it as a bucket offset — panicking with an
// out-of-range device access within a few hundred operations of this
// workload. YieldEvery=32 forces a goroutine switch every few protocol
// steps, so slices regularly end with a reclaim descriptor installed in
// a directory entry while another worker walks it; the growth-heavy mix
// keeps splits (and their opportunistic reclaims) in flight throughout.
func TestHashDirectoryReclaimRace(t *testing.T) {
	cfg := Config{
		Size:               8 << 20,
		Descriptors:        256,
		MaxHandles:         8,
		BwTreeMappingSlots: 1 << 10,
		HashDirSlots:       1 << 8,
		YieldEvery:         32,
	}
	st, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tab, err := st.HashTable(HashTableOptions{SlotsPerBucket: 2})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const opsPerWorker = 3000
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		h := tab.NewHandle()
		wg.Add(1)
		go func(w int, h *HashTableHandle) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < opsPerWorker; i++ {
				key := uint64(rng.Intn(4096)) + 1
				switch rng.Intn(6) {
				case 0, 1, 2, 3:
					err := h.Insert(key, key*3)
					if errors.Is(err, hashtable.ErrKeyExists) {
						err = h.Update(key, key*5)
					}
					if err != nil {
						errc <- err
						return
					}
				case 4:
					if err := h.Delete(key); err != nil && !errors.Is(err, hashtable.ErrNotFound) {
						errc <- err
						return
					}
				case 5:
					if _, err := h.Get(key); err != nil && !errors.Is(err, hashtable.ErrNotFound) {
						errc <- err
						return
					}
				}
			}
		}(w, h)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Epoch-deferred descriptor recycling may still be pending; audit the
	// store the way the crash sweep does, through a power cut + recovery.
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}
