package pmwcas

import (
	"bytes"
	"strings"
	"testing"

	"pmwcas/internal/nvram"
)

func testShardConfig(shards int) Config {
	return Config{
		Size:               uint64(shards) << 20, // 1 MiB per shard
		Shards:             shards,
		Descriptors:        64,
		MaxHandles:         8,
		BwTreeMappingSlots: 1 << 10,
		HashDirSlots:       1 << 6,
	}
}

// TestShardedStoreBasics drives a four-shard store end to end: keys
// routed by ShardForKey land on every shard, the merged Stats sum the
// per-shard counters, and the whole thing survives a crash, recovers
// shard by shard, and passes the full-store audit.
func TestShardedStoreBasics(t *testing.T) {
	const shards = 4
	st, err := Create(testShardConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.ShardCount(); got != shards {
		t.Fatalf("ShardCount = %d, want %d", got, shards)
	}

	// Route 400 keys exactly as the server would and insert each into its
	// shard's hash table (one handle per shard — handles are a bounded
	// startup resource).
	handles := make([]*HashTableHandle, shards)
	for si := 0; si < shards; si++ {
		tab, err := st.Shard(si).HashTable(HashTableOptions{})
		if err != nil {
			t.Fatalf("shard %d HashTable: %v", si, err)
		}
		handles[si] = tab.NewHandle()
	}
	const n = 400
	hit := make([]int, shards)
	for k := uint64(1); k <= n; k++ {
		si := st.ShardForKey(k)
		if si < 0 || si >= shards {
			t.Fatalf("ShardForKey(%d) = %d, out of range", k, si)
		}
		hit[si]++
		if err := handles[si].Insert(k, k*7); err != nil {
			t.Fatalf("shard %d Insert(%d): %v", si, k, err)
		}
	}
	for si, c := range hit {
		if c == 0 {
			t.Fatalf("shard %d received no keys out of %d — routing is degenerate", si, n)
		}
	}

	// Merged stats: per-shard table lengths sum to n, and the shard count
	// plus summed pool activity show up in one snapshot.
	total := 0
	for si := 0; si < shards; si++ {
		total += handles[si].Len()
	}
	if total != n {
		t.Fatalf("per-shard lengths sum to %d, want %d", total, n)
	}
	ss := st.Stats()
	if ss.Shards != shards {
		t.Fatalf("Stats().Shards = %d, want %d", ss.Shards, shards)
	}
	if ss.Pool.Succeeded == 0 || ss.DescriptorsCap != shards*64 {
		t.Fatalf("merged stats look unmerged: %+v", ss)
	}
	if ss.HashSealedBuckets != ss.HashSplits-ss.HashReclaims {
		t.Fatalf("sealed-bucket gauge %d, want splits-reclaims = %d",
			ss.HashSealedBuckets, ss.HashSplits-ss.HashReclaims)
	}

	// Crash, recover (all shards, in order), audit, and re-read.
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	ds, err := st.CheckInvariants(CheckOptions{})
	if err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	if len(ds.Hash) != n {
		t.Fatalf("audit found %d hash entries, want %d", len(ds.Hash), n)
	}
	// Pre-crash handles are poisoned by Recover; re-mint one per shard.
	for si := 0; si < shards; si++ {
		tab, err := st.Shard(si).HashTable(HashTableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		handles[si] = tab.NewHandle()
	}
	for k := uint64(1); k <= n; k++ {
		if v, err := handles[st.ShardForKey(k)].Get(k); err != nil || v != k*7 {
			t.Fatalf("after recovery, Get(%d) = (%d, %v), want %d", k, v, err, k*7)
		}
	}
}

// TestShardForKey pins the routing function's contract: deterministic,
// in range, non-degenerate, and the single-shard fast path.
func TestShardForKey(t *testing.T) {
	st, err := Create(testShardConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for k := uint64(0); k < 1000; k++ {
		a, b := st.ShardForKey(k), st.ShardForKey(k)
		if a != b {
			t.Fatalf("ShardForKey(%d) is not deterministic: %d vs %d", k, a, b)
		}
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Fatalf("1000 sequential keys hit only %d of 4 shards", len(seen))
	}
	one, err := Create(testRecoverConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if got := one.ShardForKey(k); got != 0 {
			t.Fatalf("single-shard ShardForKey(%d) = %d, want 0", k, got)
		}
	}
}

// TestShardRecoveryHookOrder: Config.RecoveryHook must fire once per
// shard, in shard order, on both recovery paths (OpenDevice and
// in-place Recover) — the contract crash sweeps rely on to interleave
// crashes between shard recoveries.
func TestShardRecoveryHookOrder(t *testing.T) {
	cfg := testShardConfig(3)
	st, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	list, err := st.Shard(2).SkipList()
	if err != nil {
		t.Fatal(err)
	}
	if err := list.NewHandle(1).Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}

	var order []int
	st.cfg.RecoveryHook = func(shard int) { order = append(order, shard) }
	if _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("Recover hook order = %v, want [0 1 2]", order)
	}

	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}
	var pre bytes.Buffer
	if err := st.Device().WriteSnapshot(&pre); err != nil {
		t.Fatal(err)
	}
	dev2 := nvram.New(cfg.Size)
	if err := dev2.ReadSnapshot(bytes.NewReader(pre.Bytes())); err != nil {
		t.Fatal(err)
	}
	order = nil
	cfg.RecoveryHook = func(shard int) { order = append(order, shard) }
	if _, err := OpenDevice(dev2, cfg); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("OpenDevice hook order = %v, want [0 1 2]", order)
	}
}

// TestShardRecoverMatchesOpenDevice is the sharded golden-image test:
// with two populated shards, in-place Recover and OpenDevice over the
// same crashed image must produce byte-identical devices — recovery is
// a pure function of Config shard by shard, with no cross-shard bleed.
func TestShardRecoverMatchesOpenDevice(t *testing.T) {
	cfg := testShardConfig(2)
	st, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := 0; si < 2; si++ {
		sh := st.Shard(si)
		list, err := sh.SkipList()
		if err != nil {
			t.Fatal(err)
		}
		h := list.NewHandle(1)
		for i := 1; i <= 30; i++ {
			if err := h.Insert(uint64(i), uint64(si*1000+i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i <= 30; i += 4 {
			if err := h.Delete(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		q, err := sh.Queue()
		if err != nil {
			t.Fatal(err)
		}
		qh := q.NewHandle()
		for i := 1; i <= 5; i++ {
			if err := qh.Enqueue(uint64(si*100 + i)); err != nil {
				t.Fatal(err)
			}
		}
		tab, err := sh.HashTable(HashTableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		th := tab.NewHandle()
		for i := 1; i <= 50; i++ {
			if err := th.Insert(uint64(i), uint64(i*3)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}

	var pre bytes.Buffer
	if err := st.Device().WriteSnapshot(&pre); err != nil {
		t.Fatal(err)
	}

	// Path A: in-place recovery.
	if _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	var imgA bytes.Buffer
	if err := st.Device().WriteSnapshot(&imgA); err != nil {
		t.Fatal(err)
	}

	// Path B: reopen the crashed image on a fresh device.
	dev2 := nvram.New(cfg.Size)
	if err := dev2.ReadSnapshot(bytes.NewReader(pre.Bytes())); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenDevice(dev2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var imgB bytes.Buffer
	if err := dev2.WriteSnapshot(&imgB); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(imgA.Bytes(), imgB.Bytes()) {
		a, b := imgA.Bytes(), imgB.Bytes()
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				// Name the shard whose region the divergence falls in.
				shard := -1
				for si, s := range st.shards {
					if nvram.Offset(i) >= s.poolRegion.Base && nvram.Offset(i) < s.hashDirRegion.End() {
						shard = si
					}
				}
				t.Fatalf("recovered images diverge at byte %#x (shard %d): in-place %#x, OpenDevice %#x",
					i, shard, a[i], b[i])
			}
		}
		t.Fatalf("recovered images differ in length: %d vs %d", len(a), len(b))
	}

	dsA, err := st.CheckInvariants(CheckOptions{})
	if err != nil {
		t.Fatalf("in-place CheckInvariants: %v", err)
	}
	dsB, err := st2.CheckInvariants(CheckOptions{})
	if err != nil {
		t.Fatalf("OpenDevice CheckInvariants: %v", err)
	}
	if len(dsA.SkipList) != len(dsB.SkipList) || len(dsA.Hash) != len(dsB.Hash) ||
		len(dsA.Queue) != len(dsB.Queue) {
		t.Fatalf("recovered contents disagree: %d/%d list, %d/%d hash, %d/%d queued",
			len(dsA.SkipList), len(dsB.SkipList), len(dsA.Hash), len(dsB.Hash),
			len(dsA.Queue), len(dsB.Queue))
	}
}

// TestShardInvariantBridging: a single shard's invariant violation must
// fail the whole-store audit, and the error must name the shard. The
// violation here is an allocator leak on shard 1 — a block delivered to
// a root word whose anchor is then wiped, leaving it allocated but
// unreachable.
func TestShardInvariantBridging(t *testing.T) {
	st, err := Create(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Control: the untouched two-shard store passes.
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatalf("audit of a clean store: %v", err)
	}
	// Leak a block on shard 1: delivered to a root word, which the audit's
	// reachability scan does not cover — allocated but unreachable.
	target := st.Shard(1).RootWord(0)
	if _, err := st.Shard(1).Alloc(64, target); err != nil {
		t.Fatal(err)
	}
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	if st.Device().Load(target) == 0 {
		t.Fatal("allocation did not survive the crash")
	}
	_, err = st.CheckInvariants(CheckOptions{})
	if err == nil {
		t.Fatal("audit passed with a leaked block on shard 1")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("audit error does not name the failing shard: %v", err)
	}
}

// TestConfigOverflowErrors pins the fill() validation: a configuration
// whose fixed regions cannot fit the per-shard budget must be rejected
// up front with an error naming the oversized region, not clamped into
// a silently undersized allocator or a layout panic.
func TestConfigOverflowErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "descriptor pool",
			cfg:  Config{Size: 1 << 20, Descriptors: 1 << 20},
			want: "descriptor pool",
		},
		{
			name: "mapping table",
			cfg:  Config{Size: 1 << 20, Descriptors: 64, BwTreeMappingSlots: 1 << 24},
			want: "Bw-tree mapping table",
		},
		{
			name: "hash directory",
			cfg: Config{Size: 1 << 20, Descriptors: 64,
				BwTreeMappingSlots: 1 << 10, HashDirSlots: 1 << 24},
			want: "hash directory",
		},
		{
			name: "too many shards",
			cfg:  Config{Size: 1 << 21, Shards: 16},
			want: "Shards 16",
		},
		{
			name: "negative shards",
			cfg:  Config{Size: 1 << 20, Shards: -2},
			want: "Shards must be positive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Create(tc.cfg)
			if err == nil {
				t.Fatal("Create accepted an impossible configuration")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

// TestPoolStatsMergesShards is the regression test for PoolStats
// returning only shard 0's counters: drive PMwCAS activity exclusively
// on a non-zero shard and assert the merged view still sees it (the
// old single-shard read reported all zeros here).
func TestPoolStatsMergesShards(t *testing.T) {
	const shards = 4
	st, err := Create(testShardConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Pick a shard that is not 0 and insert only keys routed to it.
	target := 0
	keys := make(map[int][]uint64)
	for k := uint64(1); k <= 200; k++ {
		si := st.ShardForKey(k)
		keys[si] = append(keys[si], k)
		if si != 0 {
			target = si
		}
	}
	if target == 0 {
		t.Fatal("no key routed off shard 0 — routing is degenerate")
	}
	tab, err := st.Shard(target).HashTable(HashTableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := tab.NewHandle()
	for _, k := range keys[target][:10] {
		if err := h.Insert(k, k); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}

	ps := st.PoolStats()
	if ps.Succeeded == 0 || ps.Allocated == 0 {
		t.Fatalf("PoolStats sees no activity on shard %d — not merged across shards: %+v", target, ps)
	}
	if got, want := ps, st.Stats().Pool; got != want {
		t.Fatalf("PoolStats %+v disagrees with Stats().Pool %+v", got, want)
	}
}
