// Command pmwcas-inspect opens a store snapshot (written by
// Store.Checkpoint) read-only-ish and reports what is inside: descriptor
// pool state before and after recovery, allocator occupancy, and the
// shape and contents summary of the indexes. Useful when debugging a
// crash image or just to see the durable state a power failure would
// leave behind.
//
// The geometry flags must match the Config the snapshot was created
// with — layout is a pure function of the configuration.
//
// Usage:
//
//	pmwcas-inspect -image store.img [-size bytes] [-descriptors n]
//	               [-words n] [-handles n] [-mapping slots] [-keys]
package main

import (
	"flag"
	"fmt"
	"os"

	"pmwcas"
	"pmwcas/internal/harness"
)

func main() {
	image := flag.String("image", "", "snapshot file written by Store.Checkpoint (required)")
	size := flag.Uint64("size", 64<<20, "device size the store was created with")
	descriptors := flag.Int("descriptors", 1024, "descriptor pool size")
	words := flag.Int("words", 0, "words per descriptor (0 = library default)")
	handles := flag.Int("handles", 64, "max allocator handles")
	mapping := flag.Uint64("mapping", 1<<16, "Bw-tree mapping slots")
	showKeys := flag.Bool("keys", false, "dump index keys (small stores only)")
	flag.Parse()
	if *image == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := pmwcas.Config{
		Size:               *size,
		Descriptors:        *descriptors,
		WordsPerDescriptor: *words,
		MaxHandles:         *handles,
		BwTreeMappingSlots: *mapping,
	}
	store, err := pmwcas.OpenFile(*image, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmwcas-inspect:", err)
		os.Exit(1)
	}

	// Recovery already ran inside OpenFile; report what it found and the
	// post-recovery state of each layer.
	fmt.Printf("image: %s (%d bytes device size)\n", *image, *size)

	blocks, bytes := store.MemoryInUse()
	tbl := harness.NewTable("allocator", "metric", "value")
	tbl.Add("blocks in use", blocks)
	tbl.Add("bytes in use", bytes)
	tbl.Print(os.Stdout)

	ps := store.PoolStats()
	tbl = harness.NewTable("descriptor pool (post-recovery)", "metric", "value")
	tbl.Add("succeeded (this process)", ps.Succeeded)
	tbl.Add("failed (this process)", ps.Failed)
	tbl.Add("helps", ps.Helps)
	tbl.Print(os.Stdout)

	// Skip list summary.
	if list, err := store.SkipList(); err == nil {
		h := list.NewHandle(1)
		n := 0
		var minK, maxK uint64
		h.Scan(1, pmwcas.MaxSkipListKey, func(e pmwcas.SkipListEntry) bool {
			if n == 0 {
				minK = e.Key
			}
			maxK = e.Key
			n++
			if *showKeys {
				fmt.Printf("  skiplist %d -> %d\n", e.Key, e.Value)
			}
			return true
		})
		tbl = harness.NewTable("skip list", "metric", "value")
		tbl.Add("keys", n)
		if n > 0 {
			tbl.Add("min key", minK)
			tbl.Add("max key", maxK)
		}
		tbl.Print(os.Stdout)
	}

	// Bw-tree summary.
	if tree, err := store.BwTree(pmwcas.BwTreeOptions{}); err == nil {
		h := tree.NewHandle()
		st := tree.Stats(h)
		tbl = harness.NewTable("bw-tree", "metric", "value")
		tbl.Add("height", st.Height)
		tbl.Add("leaves", st.Leaves)
		tbl.Add("inner pages", st.Inners)
		tbl.Add("keys", st.Keys)
		tbl.Add("max delta chain", st.MaxChain)
		tbl.Add("live delta records", st.ChainLinks)
		tbl.Add("LPIDs used", st.UsedLPIDs)
		tbl.Print(os.Stdout)
		if *showKeys {
			h.Scan(1, pmwcas.MaxBwTreeKey, func(e pmwcas.BwTreeEntry) bool {
				fmt.Printf("  bwtree %d -> %d\n", e.Key, e.Value)
				return true
			})
		}
	}
}
