// Command pmwcas-inspect opens a store snapshot (written by
// Store.Checkpoint) read-only-ish and reports what is inside: descriptor
// pool state before and after recovery, allocator occupancy, and the
// shape and contents summary of the indexes. Useful when debugging a
// crash image or just to see the durable state a power failure would
// leave behind.
//
// The geometry flags must match the Config the snapshot was created
// with — layout is a pure function of the configuration.
//
// Usage:
//
//	pmwcas-inspect -image store.img [-size bytes] [-descriptors n]
//	               [-words n] [-handles n] [-mapping slots] [-keys]
//	pmwcas-inspect stats -image store.img [-shards n] [geometry flags]
//	pmwcas-inspect trace [-addr host:port] [-timeout d] [-raw]
//
// The stats subcommand prints the merged StoreStats snapshot in the
// server's STATS wire format ("name value" lines) without needing a
// running server — point it at a checkpoint image. The trace subcommand
// dials a live server, fetches the PMwCAS descriptor lifecycle ring
// (METRICS with the "trace" view), and prints each descriptor's
// lifecycle — alloc → execute → help* → decide → retire → finalize —
// with per-step latencies and helper lane IDs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"pmwcas"
	"pmwcas/internal/harness"
	"pmwcas/internal/metrics"
	"pmwcas/internal/server"
	"pmwcas/internal/wire"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "stats":
			runStats(os.Args[2:])
			return
		case "trace":
			runTrace(os.Args[2:])
			return
		}
	}
	runInspect(os.Args[1:])
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pmwcas-inspect: "+format+"\n", args...)
	os.Exit(1)
}

// geometryFlags registers the store-layout flags shared by the image
// subcommands and returns a builder that assembles the Config.
func geometryFlags(fs *flag.FlagSet) func() pmwcas.Config {
	size := fs.Uint64("size", 64<<20, "device size the store was created with")
	descriptors := fs.Int("descriptors", 1024, "descriptor pool size (per shard)")
	words := fs.Int("words", 0, "words per descriptor (0 = library default)")
	handles := fs.Int("handles", 64, "max allocator handles")
	mapping := fs.Uint64("mapping", 1<<16, "Bw-tree mapping slots")
	shards := fs.Int("shards", 1, "shard count the store was created with")
	return func() pmwcas.Config {
		return pmwcas.Config{
			Size:               *size,
			Descriptors:        *descriptors,
			WordsPerDescriptor: *words,
			MaxHandles:         *handles,
			BwTreeMappingSlots: *mapping,
			Shards:             *shards,
		}
	}
}

// runStats opens an image offline and prints the merged StoreStats in
// the exact format the STATS wire command uses.
func runStats(args []string) {
	fs := flag.NewFlagSet("pmwcas-inspect stats", flag.ExitOnError)
	image := fs.String("image", "", "snapshot file written by Store.Checkpoint (required)")
	cfgOf := geometryFlags(fs)
	fs.Parse(args)
	if *image == "" {
		fs.Usage()
		os.Exit(2)
	}
	store, err := pmwcas.OpenFile(*image, cfgOf())
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(server.FormatStats(store.Stats()))
}

// runTrace dials a server and reconstructs descriptor lifecycles from
// the trace ring.
func runTrace(args []string) {
	fs := flag.NewFlagSet("pmwcas-inspect trace", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7171", "server address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial and per-request timeout")
	raw := fs.Bool("raw", false, "print the raw JSON dump instead of grouped lifecycles")
	fs.Parse(args)

	c, err := wire.DialTimeout(*addr, *timeout)
	if err != nil {
		fatalf("dial %s: %v", *addr, err)
	}
	defer c.Close()
	payload, err := c.Trace()
	if err != nil {
		fatalf("trace: %v", err)
	}
	if *raw {
		os.Stdout.Write(payload)
		fmt.Println()
		return
	}
	evs, err := metrics.ParseTrace(payload)
	if err != nil {
		fatalf("parse trace: %v", err)
	}
	printLifecycles(evs)
}

// printLifecycles groups trace events by descriptor and prints each
// lifecycle chronologically with step-relative latencies.
func printLifecycles(evs []metrics.TraceEvent) {
	if len(evs) == 0 {
		fmt.Println("trace ring empty (server started with -metrics=false, or no PMwCAS activity yet)")
		return
	}
	// Group by descriptor offset, remembering first-seen order.
	groups := make(map[uint64][]metrics.TraceEvent)
	var order []uint64
	for _, ev := range evs {
		if _, ok := groups[ev.Desc]; !ok {
			order = append(order, ev.Desc)
		}
		groups[ev.Desc] = append(groups[ev.Desc], ev)
	}
	sort.Slice(order, func(a, b int) bool {
		return groups[order[a]][0].Seq < groups[order[b]][0].Seq
	})
	fmt.Printf("%d events, %d descriptors\n", len(evs), len(order))
	for _, desc := range order {
		g := groups[desc]
		fmt.Printf("desc 0x%x (%d events)\n", desc, len(g))
		base := g[0].T
		for _, ev := range g {
			fmt.Printf("  +%-10s %-8s lane=%-3d aux=%d (seq %d)\n",
				time.Duration(ev.T-base), ev.Kind, ev.Actor, ev.Aux, ev.Seq)
		}
	}
}

// runInspect is the original whole-image inspection (the default when
// no subcommand is given).
func runInspect(args []string) {
	fs := flag.NewFlagSet("pmwcas-inspect", flag.ExitOnError)
	image := fs.String("image", "", "snapshot file written by Store.Checkpoint (required)")
	cfgOf := geometryFlags(fs)
	showKeys := fs.Bool("keys", false, "dump index keys (small stores only)")
	fs.Parse(args)
	if *image == "" {
		fs.Usage()
		os.Exit(2)
	}

	store, err := pmwcas.OpenFile(*image, cfgOf())
	if err != nil {
		fatalf("%v", err)
	}

	// Recovery already ran inside OpenFile; report what it found and the
	// post-recovery state of each layer.
	fmt.Printf("image: %s\n", *image)

	blocks, bytes := store.MemoryInUse()
	tbl := harness.NewTable("allocator", "metric", "value")
	tbl.Add("blocks in use", blocks)
	tbl.Add("bytes in use", bytes)
	tbl.Print(os.Stdout)

	ps := store.PoolStats()
	tbl = harness.NewTable("descriptor pool (post-recovery)", "metric", "value")
	tbl.Add("succeeded (this process)", ps.Succeeded)
	tbl.Add("failed (this process)", ps.Failed)
	tbl.Add("helps", ps.Helps)
	tbl.Print(os.Stdout)

	// Skip list summary.
	if list, err := store.SkipList(); err == nil {
		h := list.NewHandle(1)
		n := 0
		var minK, maxK uint64
		h.Scan(1, pmwcas.MaxSkipListKey, func(e pmwcas.SkipListEntry) bool {
			if n == 0 {
				minK = e.Key
			}
			maxK = e.Key
			n++
			if *showKeys {
				fmt.Printf("  skiplist %d -> %d\n", e.Key, e.Value)
			}
			return true
		})
		tbl = harness.NewTable("skip list", "metric", "value")
		tbl.Add("keys", n)
		if n > 0 {
			tbl.Add("min key", minK)
			tbl.Add("max key", maxK)
		}
		tbl.Print(os.Stdout)
	}

	// Bw-tree summary.
	if tree, err := store.BwTree(pmwcas.BwTreeOptions{}); err == nil {
		h := tree.NewHandle()
		st := tree.Stats(h)
		tbl = harness.NewTable("bw-tree", "metric", "value")
		tbl.Add("height", st.Height)
		tbl.Add("leaves", st.Leaves)
		tbl.Add("inner pages", st.Inners)
		tbl.Add("keys", st.Keys)
		tbl.Add("max delta chain", st.MaxChain)
		tbl.Add("live delta records", st.ChainLinks)
		tbl.Add("LPIDs used", st.UsedLPIDs)
		tbl.Print(os.Stdout)
		if *showKeys {
			h.Scan(1, pmwcas.MaxBwTreeKey, func(e pmwcas.BwTreeEntry) bool {
				fmt.Printf("  bwtree %d -> %d\n", e.Key, e.Value)
				return true
			})
		}
	}
}
