// Command pmwcaslint runs the PMwCAS protocol analyzers (internal/lint)
// over Go packages. It is both a `go vet -vettool` unitchecker and its
// own driver:
//
//	go run ./cmd/pmwcaslint ./...        # lint the whole tree
//	go vet -vettool=$(which pmwcaslint) ./...
//
// When invoked with package patterns, pmwcaslint re-executes itself
// through `go vet -vettool`, which supplies type information and export
// data for every dependency without any network access. When invoked by
// go vet (with -V=full or a *.cfg unit file), it behaves as a standard
// unitchecker.
//
// Exit status is non-zero if any diagnostic is reported.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"pmwcas/internal/lint"
)

func main() {
	// go vet protocol: `pmwcaslint -V=full` (version probe), `-flags`
	// (flag enumeration), or `pmwcaslint [flags] unit.cfg` (analysis unit).
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "-V" || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(lint.Analyzers...) // does not return
		}
	}

	// Driver mode: re-exec through `go vet -vettool=<self>` so the build
	// system supplies types and facts for each package unit.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmwcaslint: cannot locate own binary:", err)
		os.Exit(2)
	}
	args := []string{"vet", "-vettool=" + exe}
	if len(os.Args) > 1 {
		args = append(args, os.Args[1:]...)
	} else {
		args = append(args, "./...")
	}
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "pmwcaslint:", err)
		os.Exit(2)
	}
}
