// Command pmwcaslint runs the PMwCAS protocol analyzers (internal/lint)
// plus three stock vet passes vendored from the toolchain (atomic,
// copylock, loopclosure) over Go packages. It is both a `go vet
// -vettool` unitchecker and its own driver:
//
//	go run ./cmd/pmwcaslint ./...        # lint the whole tree
//	go run ./cmd/pmwcaslint -audit ./... # only audit //lint:allow comments
//	go run ./cmd/pmwcaslint -json ./...  # machine-readable diagnostics
//	go vet -vettool=$(which pmwcaslint) ./...
//
// When invoked with package patterns, pmwcaslint re-executes itself
// through `go vet -vettool`, which supplies type information and export
// data for every dependency without any network access. When invoked by
// go vet (with -V=full or a *.cfg unit file), it behaves as a standard
// unitchecker.
//
// -audit enables only the staleallow analyzer: the checkers still run
// (use tracking needs their verdicts) but only suppression-audit
// findings are printed — stale //lint:allow comments, unknown analyzer
// names, missing reasons, and malformed //pmwcas: annotations.
//
// -json replaces the human-readable report with a single JSON array on
// stdout, one object per diagnostic, sorted by file, line, and analyzer:
//
//	[{"file": "internal/x/y.go", "line": 12, "col": 3,
//	  "analyzer": "rawload", "message": "raw Device.Load on ..."}]
//
// An empty report is the empty array. Exit codes are the same as the
// human-readable mode: 1 when any diagnostic is reported, 0 when clean.
//
// Exit status is non-zero if any diagnostic is reported, and 2 when no
// package pattern is given.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/unitchecker"

	"pmwcas/internal/lint"
)

// Stock vet analyzers vendored from the Go toolchain ride along with the
// protocol analyzers: lock-free code is exactly where a misused atomic, a
// copied mutex, or a goroutine-captured loop variable does the most
// damage. Named here (rather than used inline) so the tests can run each
// one against a fixture that seeds its bug.
var (
	atomicAnalyzer      = atomic.Analyzer
	copylockAnalyzer    = copylock.Analyzer
	loopclosureAnalyzer = loopclosure.Analyzer
)

// analyzers is the full unitchecker set: protocol analyzers then stock
// vet passes.
func analyzers() []*analysis.Analyzer {
	all := append([]*analysis.Analyzer{}, lint.Analyzers...)
	return append(all, atomicAnalyzer, copylockAnalyzer, loopclosureAnalyzer)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	// go vet protocol: `pmwcaslint -V=full` (version probe), `-flags`
	// (flag enumeration), or `pmwcaslint [flags] unit.cfg` (analysis unit).
	for _, arg := range args {
		if arg == "-V=full" || arg == "-V" || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(analyzers()...) // does not return
		}
	}

	// Driver mode: re-exec through `go vet -vettool=<self>` so the build
	// system supplies types and facts for each package unit. -audit maps
	// to the unitchecker's per-analyzer enable flag for staleallow:
	// explicitly enabling one analyzer reports only it, while its
	// prerequisites (every checker) still execute and mark suppressions
	// used.
	jsonOut := false
	var vetArgs []string
	for _, arg := range args {
		switch arg {
		case "-audit", "--audit":
			vetArgs = append(vetArgs, "-staleallow")
		case "-json", "--json":
			jsonOut = true
		default:
			vetArgs = append(vetArgs, arg)
		}
	}
	if len(vetArgs) == 0 || !hasPackageArg(vetArgs) {
		fmt.Fprintln(stderr, "usage: pmwcaslint [-audit] [-json] [analyzer flags] package...")
		fmt.Fprintln(stderr, "       (e.g. `pmwcaslint ./...`; run `go doc pmwcas/internal/lint` for the analyzer list)")
		return 2
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "pmwcaslint: cannot locate own binary:", err)
		return 2
	}
	if jsonOut {
		vetArgs = append([]string{"-json"}, vetArgs...)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, vetArgs...)...)
	cmd.Stdin = os.Stdin
	if !jsonOut {
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return ee.ExitCode()
			}
			fmt.Fprintln(stderr, "pmwcaslint:", err)
			return 2
		}
		return 0
	}

	// JSON mode: `go vet -json` writes `# pkg` comment lines and one JSON
	// object per package to stderr — and exits 0 even with findings.
	// Capture the stream, flatten it, and restore the human-mode exit
	// contract (1 when anything was reported).
	var raw bytes.Buffer
	cmd.Stdout = stdout
	cmd.Stderr = &raw
	if err := cmd.Run(); err != nil {
		// Build or driver failure, not diagnostics: surface it verbatim.
		stderr.Write(raw.Bytes())
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(stderr, "pmwcaslint:", err)
		return 2
	}
	diags, err := flattenVetJSON(raw.Bytes())
	if err != nil {
		fmt.Fprintln(stderr, "pmwcaslint: cannot parse go vet -json output:", err)
		stderr.Write(raw.Bytes())
		return 2
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(diags); err != nil {
		fmt.Fprintln(stderr, "pmwcaslint:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDiag is one diagnostic in `pmwcaslint -json` output.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// flattenVetJSON parses the stderr stream of `go vet -json` — `# pkg`
// comment lines interleaved with one {pkgpath: {analyzer: [diagnostic]}}
// object per package — into a flat, deterministically ordered slice.
// The result is never nil: an empty report must encode as [], not null.
func flattenVetJSON(raw []byte) ([]jsonDiag, error) {
	var clean bytes.Buffer
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		clean.Write(line)
		clean.WriteByte('\n')
	}
	type vetDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	diags := []jsonDiag{}
	dec := json.NewDecoder(&clean)
	for {
		var unit map[string]map[string][]vetDiag
		if err := dec.Decode(&unit); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		for _, byAnalyzer := range unit {
			for analyzer, list := range byAnalyzer {
				for _, d := range list {
					file, line, col := splitPosn(d.Posn)
					diags = append(diags, jsonDiag{
						File: file, Line: line, Col: col,
						Analyzer: analyzer, Message: d.Message,
					})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// splitPosn parses "path:line:col" from the right, so path may contain
// colons. Missing parts decay to zero rather than failing the report.
func splitPosn(posn string) (file string, line, col int) {
	rest := posn
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		col, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		line, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	return rest, line, col
}

// hasPackageArg reports whether at least one argument is a package
// pattern rather than a flag: with nothing to analyze, `go vet` would
// default to the current directory, which silently lints one package
// when the caller almost certainly meant ./... — require an explicit
// pattern instead.
func hasPackageArg(args []string) bool {
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			return true
		}
	}
	return false
}
