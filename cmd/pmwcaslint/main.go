// Command pmwcaslint runs the PMwCAS protocol analyzers (internal/lint)
// over Go packages. It is both a `go vet -vettool` unitchecker and its
// own driver:
//
//	go run ./cmd/pmwcaslint ./...        # lint the whole tree
//	go run ./cmd/pmwcaslint -audit ./... # only audit //lint:allow comments
//	go vet -vettool=$(which pmwcaslint) ./...
//
// When invoked with package patterns, pmwcaslint re-executes itself
// through `go vet -vettool`, which supplies type information and export
// data for every dependency without any network access. When invoked by
// go vet (with -V=full or a *.cfg unit file), it behaves as a standard
// unitchecker.
//
// -audit enables only the staleallow analyzer: the checkers still run
// (use tracking needs their verdicts) but only suppression-audit
// findings are printed — stale //lint:allow comments, unknown analyzer
// names, missing reasons.
//
// Exit status is non-zero if any diagnostic is reported, and 2 when no
// package pattern is given.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"pmwcas/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	// go vet protocol: `pmwcaslint -V=full` (version probe), `-flags`
	// (flag enumeration), or `pmwcaslint [flags] unit.cfg` (analysis unit).
	for _, arg := range args {
		if arg == "-V=full" || arg == "-V" || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(lint.Analyzers...) // does not return
		}
	}

	// Driver mode: re-exec through `go vet -vettool=<self>` so the build
	// system supplies types and facts for each package unit. -audit maps
	// to the unitchecker's per-analyzer enable flag for staleallow:
	// explicitly enabling one analyzer reports only it, while its
	// prerequisites (every checker) still execute and mark suppressions
	// used.
	var vetArgs []string
	for _, arg := range args {
		if arg == "-audit" || arg == "--audit" {
			vetArgs = append(vetArgs, "-staleallow")
			continue
		}
		vetArgs = append(vetArgs, arg)
	}
	if len(vetArgs) == 0 || !hasPackageArg(vetArgs) {
		fmt.Fprintln(stderr, "usage: pmwcaslint [-audit] [analyzer flags] package...")
		fmt.Fprintln(stderr, "       (e.g. `pmwcaslint ./...`; run `go doc pmwcas/internal/lint` for the analyzer list)")
		return 2
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "pmwcaslint: cannot locate own binary:", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, vetArgs...)...)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(stderr, "pmwcaslint:", err)
		return 2
	}
	return 0
}

// hasPackageArg reports whether at least one argument is a package
// pattern rather than a flag: with nothing to analyze, `go vet` would
// default to the current directory, which silently lints one package
// when the caller almost certainly meant ./... — require an explicit
// pattern instead.
func hasPackageArg(args []string) bool {
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			return true
		}
	}
	return false
}
