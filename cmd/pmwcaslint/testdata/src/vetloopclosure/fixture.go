// Fixture proving the vendored `loopclosure` vet analyzer fires through
// the pmwcaslint analyzer set. The build constraint pins this file to
// go1.21 language semantics, where loop variables are per-loop rather
// than per-iteration: every goroutine spawned below captures the same
// variable, and most observe only its final value. (For go1.22+ files
// the analyzer correctly stays silent, so the constraint is what keeps
// this fixture exercising the check.)

//go:build go1.21

package vetloopclosure

func Spawn(keys []uint64, publish func(uint64)) {
	for _, k := range keys {
		go func() {
			publish(k) // want `loop variable k captured by func literal`
		}()
	}
}
