// Fixture proving the vendored `copylock` vet analyzer fires through
// the pmwcaslint analyzer set: a sync.Mutex passed or copied by value
// forks the lock state and silently stops excluding anything.
package vetcopylock

import "sync"

type guarded struct {
	mu sync.Mutex
	n  uint64
}

func byValue(g guarded) uint64 { // want `byValue passes lock by value: fixtures/vetcopylock.guarded contains sync.Mutex`
	return g.n
}

func copies(g *guarded) uint64 {
	snap := *g // want `assignment copies lock value to snap: fixtures/vetcopylock.guarded contains sync.Mutex`
	return snap.n
}

func byPointerOK(g *guarded) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
