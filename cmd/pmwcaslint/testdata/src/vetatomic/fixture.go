// Fixture proving the vendored `atomic` vet analyzer fires through the
// pmwcaslint analyzer set: assigning the result of an atomic
// read-modify-write back to the operand races with concurrent updaters.
package vetatomic

import "sync/atomic"

var counter uint64

func bump() uint64 {
	counter = atomic.AddUint64(&counter, 1) // want `direct assignment to atomic value`
	return counter
}

func bumpOK() uint64 {
	return atomic.AddUint64(&counter, 1)
}
