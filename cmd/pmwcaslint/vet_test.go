package main

import (
	"testing"

	"pmwcas/internal/lint/linttest"
)

// The three stock vet analyzers vendored from the toolchain ride along
// with the protocol analyzers in every pmwcaslint run. Each fixture
// seeds the one bug its analyzer exists to catch, proving the vendored
// copies actually fire under our driver rather than silently no-opping
// against a changed API.
func TestVetAtomic(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), atomicAnalyzer, "vetatomic")
}

func TestVetCopylock(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), copylockAnalyzer, "vetcopylock")
}

func TestVetLoopclosure(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), loopclosureAnalyzer, "vetloopclosure")
}
