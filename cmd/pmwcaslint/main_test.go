package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoArgsUsage: invoking the driver with no package pattern must
// print usage and exit 2 rather than silently linting the current
// directory.
func TestNoArgsUsage(t *testing.T) {
	stderr := captureFile(t)
	if got := run(nil, os.Stdout, stderr); got != 2 {
		t.Fatalf("run() with no args = %d, want 2", got)
	}
	out := readBack(t, stderr)
	if !strings.Contains(out, "usage: pmwcaslint") {
		t.Fatalf("run() with no args printed %q, want usage message", out)
	}
}

// TestFlagsOnlyUsage: flags without a package pattern are equally
// useless; go vet would fall back to the current directory.
func TestFlagsOnlyUsage(t *testing.T) {
	stderr := captureFile(t)
	if got := run([]string{"-audit"}, os.Stdout, stderr); got != 2 {
		t.Fatalf("run(-audit) with no packages = %d, want 2", got)
	}
	if !strings.Contains(readBack(t, stderr), "usage: pmwcaslint") {
		t.Fatal("run(-audit) with no packages did not print usage")
	}
}

func captureFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func readBack(t *testing.T, f *os.File) string {
	t.Helper()
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
