package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoArgsUsage: invoking the driver with no package pattern must
// print usage and exit 2 rather than silently linting the current
// directory.
func TestNoArgsUsage(t *testing.T) {
	stderr := captureFile(t)
	if got := run(nil, os.Stdout, stderr); got != 2 {
		t.Fatalf("run() with no args = %d, want 2", got)
	}
	out := readBack(t, stderr)
	if !strings.Contains(out, "usage: pmwcaslint") {
		t.Fatalf("run() with no args printed %q, want usage message", out)
	}
}

// TestFlagsOnlyUsage: flags without a package pattern are equally
// useless; go vet would fall back to the current directory.
func TestFlagsOnlyUsage(t *testing.T) {
	stderr := captureFile(t)
	if got := run([]string{"-audit"}, os.Stdout, stderr); got != 2 {
		t.Fatalf("run(-audit) with no packages = %d, want 2", got)
	}
	if !strings.Contains(readBack(t, stderr), "usage: pmwcaslint") {
		t.Fatal("run(-audit) with no packages did not print usage")
	}
}

// TestJSONOnlyUsage: -json still requires a package pattern.
func TestJSONOnlyUsage(t *testing.T) {
	stderr := captureFile(t)
	if got := run([]string{"-json"}, os.Stdout, stderr); got != 2 {
		t.Fatalf("run(-json) with no packages = %d, want 2", got)
	}
	if !strings.Contains(readBack(t, stderr), "usage: pmwcaslint") {
		t.Fatal("run(-json) with no packages did not print usage")
	}
}

// TestFlattenVetJSON: the `go vet -json` stream — `# pkg` comments plus
// one JSON object per package — flattens into a deterministic slice.
func TestFlattenVetJSON(t *testing.T) {
	raw := []byte(`# pmwcas/internal/b
{
	"pmwcas/internal/b": {
		"rawload": [
			{"posn": "/repo/internal/b/x.go:15:35", "message": "raw load"}
		]
	}
}
# pmwcas/internal/a
{
	"pmwcas/internal/a": {
		"persistord": [
			{"posn": "/repo/internal/a/y.go:7:3", "message": "unflushed publish"},
			{"posn": "/repo/internal/a/y.go:4:1", "message": "naked traverse"}
		]
	}
}
`)
	diags, err := flattenVetJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("flattened %d diagnostics, want 3", len(diags))
	}
	want := []jsonDiag{
		{File: "/repo/internal/a/y.go", Line: 4, Col: 1, Analyzer: "persistord", Message: "naked traverse"},
		{File: "/repo/internal/a/y.go", Line: 7, Col: 3, Analyzer: "persistord", Message: "unflushed publish"},
		{File: "/repo/internal/b/x.go", Line: 15, Col: 35, Analyzer: "rawload", Message: "raw load"},
	}
	for i := range want {
		if diags[i] != want[i] {
			t.Fatalf("diags[%d] = %+v, want %+v", i, diags[i], want[i])
		}
	}
}

// TestFlattenVetJSONEmpty: a clean run must yield a non-nil empty slice
// so the report encodes as [], not null.
func TestFlattenVetJSONEmpty(t *testing.T) {
	diags, err := flattenVetJSON([]byte("# pmwcas/internal/clean\n"))
	if err != nil {
		t.Fatal(err)
	}
	if diags == nil || len(diags) != 0 {
		t.Fatalf("flattenVetJSON(clean) = %#v, want empty non-nil slice", diags)
	}
}

func TestSplitPosn(t *testing.T) {
	for _, tc := range []struct {
		posn string
		file string
		line int
		col  int
	}{
		{"/repo/x.go:12:3", "/repo/x.go", 12, 3},
		{"C:\\repo\\x.go:12:3", "C:\\repo\\x.go", 12, 3},
		{"x.go:5", "x.go", 0, 5}, // degraded posn: parts decay, never fail
	} {
		f, l, c := splitPosn(tc.posn)
		if f != tc.file || l != tc.line || c != tc.col {
			t.Fatalf("splitPosn(%q) = (%q, %d, %d), want (%q, %d, %d)",
				tc.posn, f, l, c, tc.file, tc.line, tc.col)
		}
	}
}

func captureFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func readBack(t *testing.T, f *os.File) string {
	t.Helper()
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
