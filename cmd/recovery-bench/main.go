// Command recovery-bench measures post-crash recovery time (experiment
// E7): a single scan of the descriptor pool, rolling in-flight PMwCAS
// operations forward or back. The paper's claim is that recovery work is
// bounded by the descriptor pool (a small multiple of the thread count),
// not by the data size — this tool shows recovery time as a function of
// both pool size and the number of operations that were actually in
// flight at the crash.
//
// Usage:
//
//	recovery-bench [-pools 1024,4096,16384] [-words 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pmwcas/internal/harness"
)

func main() {
	pools := flag.String("pools", "1024,4096,16384", "descriptor pool sizes to sweep")
	words := flag.Int("words", 4, "words per descriptor")
	flag.Parse()

	tbl := harness.NewTable("E7: recovery time vs pool size and in-flight operations",
		"pool size", "in-flight", "recovery", "per descriptor", "all-or-nothing")
	for _, ps := range strings.Split(*pools, ",") {
		pool, err := strconv.Atoi(strings.TrimSpace(ps))
		if err != nil {
			fmt.Fprintf(os.Stderr, "recovery-bench: bad pool size %q\n", ps)
			os.Exit(1)
		}
		for _, frac := range []int{0, 4, 2, 1} { // 0, 1/4, 1/2, all in flight
			inflight := 0
			if frac > 0 {
				inflight = pool / frac
			}
			r, err := harness.RunRecovery(harness.RecoveryBench{
				PoolSize: pool,
				InFlight: inflight,
				Words:    *words,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "recovery-bench:", err)
				os.Exit(1)
			}
			verdict := "OK"
			if !r.CorrectOK {
				verdict = "TORN STATE"
			}
			tbl.Add(pool, inflight, r.Elapsed, r.PerDesc, verdict)
		}
	}
	tbl.Print(os.Stdout)
}
