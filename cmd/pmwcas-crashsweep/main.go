// Command pmwcas-crashsweep runs the whole-stack crash sweep: real
// workloads over a persistent store, a simulated power failure at every
// mutating device operation, recovery and invariant checks after each.
//
// A full sweep:
//
//	pmwcas-crashsweep -ops 200 -seed 1
//
// Sharded across four processes:
//
//	for i in 0 1 2 3; do pmwcas-crashsweep -shard $i -shards 4 & done
//
// Reproducing a finding printed as "seed 7, crash point 1234" on the
// bwtree workload:
//
//	pmwcas-crashsweep -seed 7 -point 1234 -workloads bwtree
//
// The exit status is 0 when every crash point recovered correctly,
// 1 when violations were found, 2 on harness errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmwcas/internal/crashsweep"
)

func main() {
	var (
		ops       = flag.Int("ops", 200, "logical operations per workload")
		seed      = flag.Int64("seed", 1, "seed for every random choice (workloads, towers, eviction)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		shard     = flag.Int("shard", 0, "this process's shard index in [0,shards)")
		shards    = flag.Int("shards", 1, "number of shards the crash points are split across")
		point     = flag.Int("point", 0, "check only this crash point (reproduce a pinned finding)")
		evict     = flag.Int("evict", 0, "evict roughly one cache line per N stores (0 = off)")
		maxViol   = flag.Int("maxviolations", 20, "stop checking a workload after this many findings")
		quiet     = flag.Bool("q", false, "suppress per-workload progress")
	)
	flag.Parse()

	opt := crashsweep.Options{
		Ops:           *ops,
		Seed:          *seed,
		Shard:         *shard,
		Shards:        *shards,
		Point:         *point,
		EvictEvery:    *evict,
		MaxViolations: *maxViol,
	}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}
	if !*quiet {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	res, err := crashsweep.Run(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashsweep:", err)
		os.Exit(2)
	}
	fmt.Printf("swept %d crash points, checked %d, %d violations\n",
		res.Points, res.Checked, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println("VIOLATION", v)
	}
	if len(res.Violations) > 0 {
		os.Exit(1)
	}
}
