// Command pmwcas-server serves a pmwcas store over TCP with the
// internal/wire protocol (GET/PUT/DELETE/SCAN/STATS/PING, pipelined).
//
// The store is a simulated-NVRAM pmwcas.Store: with -file, a snapshot is
// loaded at startup (if present) and written back on clean shutdown, so
// data survives server restarts the same way it survives power failures
// — through PMwCAS recovery on the reopened image.
//
// Usage:
//
//	pmwcas-server [-addr :7171] [-file store.img] [-index skiplist|bwtree|hash]
//	              [-mode persistent|volatile] [-size mib] [-shards n] [-maxconns n]
//	              [-debug-addr 127.0.0.1:7172] [-metrics]
//
// -debug-addr, when set, serves the observability surface over HTTP:
// /metrics (JSON snapshot), /metrics.txt (wire METRICS text), /trace
// (PMwCAS descriptor lifecycle ring as JSON), and /debug/pprof/*. Keep
// it on a loopback or otherwise access-controlled address.
//
// Stop with SIGINT/SIGTERM: the server drains in-flight requests, closes
// the store, and (with -file, persistent mode) checkpoints.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmwcas"
	"pmwcas/internal/metrics"
	"pmwcas/internal/server"
)

func main() {
	addr := flag.String("addr", ":7171", "listen address")
	file := flag.String("file", "", "store snapshot path: loaded at start if present, checkpointed on shutdown (persistent mode)")
	index := flag.String("index", "skiplist", "storage backend: skiplist (blob values), bwtree, or hash (word values; no SCAN)")
	mode := flag.String("mode", "persistent", "persistence mode: persistent or volatile")
	sizeMiB := flag.Uint64("size", 256, "store size in MiB")
	shards := flag.Int("shards", 1, "independent store shards; keys are hash-partitioned, SCAN merges shards in key order")
	maxConns := flag.Int("maxconns", 64, "concurrent connection cap (also the store-handle pool size)")
	descriptors := flag.Int("descriptors", 4096, "PMwCAS descriptor pool size (per shard)")
	readTimeout := flag.Duration("readtimeout", 0, "per-connection idle timeout (0 = none)")
	drainGrace := flag.Duration("draingrace", 250*time.Millisecond, "shutdown drain window per connection")
	debugAddr := flag.String("debug-addr", "", "optional HTTP listener for /metrics, /metrics.txt, /trace, and /debug/pprof (keep on loopback)")
	metricsOn := flag.Bool("metrics", true, "record latency histograms and counters (DRAM only)")
	traceOn := flag.Bool("trace", true, "record PMwCAS descriptor lifecycle events into the trace ring (needs -metrics)")
	flag.Parse()

	logger := log.New(os.Stderr, "pmwcas-server: ", log.LstdFlags)
	metrics.Enable(*metricsOn)
	metrics.TraceEnable(*traceOn)

	cfg := pmwcas.Config{
		Size:        *sizeMiB << 20,
		Shards:      *shards,
		Descriptors: *descriptors,
		// The skip-list backend spends 4 store handles per connection
		// (blobkv handle budgeting; on a sharded store each connection
		// holds a sub-backend on every shard); the slack covers the
		// open/recovery handles each layer takes at startup.
		MaxHandles: 4*(*maxConns) + 8,
	}
	switch *mode {
	case "persistent":
		cfg.Mode = pmwcas.Persistent
	case "volatile":
		cfg.Mode = pmwcas.Volatile
	default:
		logger.Fatalf("unknown -mode %q (want persistent or volatile)", *mode)
	}

	store, restored, err := openStore(cfg, *file)
	if err != nil {
		logger.Fatal(err)
	}
	if restored {
		logger.Printf("restored store from %s (%d MiB, %s)", *file, *sizeMiB, *mode)
	} else {
		logger.Printf("created fresh store (%d MiB, %s)", *sizeMiB, *mode)
	}

	srv, err := server.New(server.Config{
		Store:       store,
		Index:       server.Index(*index),
		MaxConns:    *maxConns,
		ReadTimeout: *readTimeout,
		DrainGrace:  *drainGrace,
		Logf:        logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: metrics.DebugHandler()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("debug listener: %v", err)
			}
		}()
		defer dbg.Close()
		logger.Printf("debug endpoints on http://%s/{metrics,metrics.txt,trace,debug/pprof}", *debugAddr)
	}

	// Serve until a signal arrives, then drain, close, checkpoint.
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	logger.Printf("serving %s index on %s (max %d connections)", *index, *addr, *maxConns)

	select {
	case sig := <-sigc:
		logger.Printf("%s: draining...", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		if err := <-errc; err != nil {
			logger.Printf("serve: %v", err)
		}
	case err := <-errc:
		if err != nil {
			logger.Fatalf("serve: %v", err)
		}
	}

	logger.Printf("served %d requests (%d connections rejected at cap)", srv.Served(), srv.Rejected())
	if err := store.Close(); err != nil {
		logger.Fatalf("close: %v", err)
	}
	if *file != "" && cfg.Mode == pmwcas.Persistent {
		if err := store.Checkpoint(*file); err != nil {
			logger.Fatalf("checkpoint: %v", err)
		}
		logger.Printf("checkpointed store to %s", *file)
	}
}

// openStore restores from a snapshot when one exists, otherwise creates
// a fresh store.
func openStore(cfg pmwcas.Config, file string) (*pmwcas.Store, bool, error) {
	if file == "" {
		s, err := pmwcas.Create(cfg)
		return s, false, err
	}
	if cfg.Mode != pmwcas.Persistent {
		return nil, false, fmt.Errorf("-file requires -mode persistent (a volatile store has nothing durable to snapshot)")
	}
	if _, err := os.Stat(file); err != nil {
		if os.IsNotExist(err) {
			s, cerr := pmwcas.Create(cfg)
			return s, false, cerr
		}
		return nil, false, err
	}
	s, err := pmwcas.OpenFile(file, cfg)
	if err != nil {
		return nil, false, fmt.Errorf("open %s: %w", file, err)
	}
	return s, true, nil
}
