// Command experiments regenerates every table and figure of the paper's
// evaluation in one run (experiment index E1-E9 in DESIGN.md, plus E11,
// the traversal flush-elision delta of EXPERIMENTS.md), printing
// paper-style tables. Absolute numbers reflect the simulated NVRAM
// substrate; the shapes — who wins, by what factor, where contention and
// persistence costs bite — are the reproduction targets.
//
// Usage:
//
//	experiments [-quick] [-threads n] [-flushns n]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"pmwcas"
	"pmwcas/internal/core"
	"pmwcas/internal/harness"
	"pmwcas/internal/htm"
	"pmwcas/internal/nvram"
	"pmwcas/internal/skiplist"
)

type scale struct {
	microOps int
	indexOps int
	keySpace uint64
	preload  int
	scanOps  int
	recPools []int
}

func main() {
	quick := flag.Bool("quick", false, "reduced parameters (seconds instead of minutes)")
	threads := flag.Int("threads", 4, "worker goroutines")
	flushNS := flag.Int("flushns", 100, "simulated CLWB latency in ns (0 = free flushes)")
	yield := flag.Int("yield", 4, "interleave logical threads every N device accesses (0 = off)")
	runAblations := flag.Bool("ablations", false, "also run the design-knob ablation sweeps (A1-A4)")
	repsFlag := flag.Int("reps", 3, "repetitions per index-workload cell (median reported)")
	only := flag.String("only", "", "run a single experiment (e1..e9, e11)")
	flag.Parse()
	yieldEvery = *yield
	reps = *repsFlag
	if *quick {
		reps = 1
	}

	sc := scale{
		microOps: 200000, indexOps: 50000, keySpace: 1 << 20, preload: 1 << 19,
		scanOps: 20000, recPools: []int{1024, 4096, 16384},
	}
	if *quick {
		sc = scale{
			microOps: 20000, indexOps: 5000, keySpace: 1 << 14, preload: 1 << 13,
			scanOps: 2000, recPools: []int{1024, 4096},
		}
	}
	flush := time.Duration(*flushNS) * time.Nanosecond

	run := func(name string, fn func()) {
		if *only == "" || *only == name {
			fn()
		}
	}
	run("e1", func() { e1e2(*threads, sc, flush) })
	run("e3", func() { e3(*threads, sc, flush) })
	run("e4", func() { e4(*threads, sc, flush) })
	run("e5", func() { e5(*threads, sc, flush) })
	run("e6", func() { e6(*threads, sc, flush) })
	run("e7", func() { e7(sc) })
	run("e8", func() { e8(sc, flush) })
	run("e9", func() { e9() })
	run("e11", func() { e11(*threads, sc, flush) })
	if *runAblations {
		ablations(*threads, sc)
	}
	if badRuns > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d run(s) produced incorrect results\n", badRuns)
		os.Exit(1)
	}
}

// badRuns counts experiment cells whose correctness check failed (e.g. a
// torn recovery); a nonzero count fails the whole command.
var badRuns int

// yieldEvery interleaves logical threads on few-core hosts (see -yield).
var yieldEvery int

// reps is the repetition count for index workload cells; the median
// throughput is reported (shared-host timing noise dwarfs real deltas on
// single runs).
var reps int

// runMedian runs the workload reps times on the same (preloaded) store
// and returns the run with median throughput.
func runMedian(f harness.IndexFactory, w harness.Workload, flushes func() uint64) (harness.Result, error) {
	n := reps
	if n < 1 {
		n = 1
	}
	results := make([]harness.Result, 0, n)
	for i := 0; i < n; i++ {
		ww := w
		if i > 0 {
			ww.Preload = 0 // already loaded
		}
		r, err := harness.Run(f, ww, flushes)
		if err != nil {
			return harness.Result{}, err
		}
		results = append(results, r)
	}
	sort.Slice(results, func(a, b int) bool { return results[a].OpsPerSec < results[b].OpsPerSec })
	return results[len(results)/2], nil
}

func micro(v harness.MicroVariant, threads, ops, array, words int, flush time.Duration) harness.MicroResult {
	r, err := harness.RunMicro(harness.MicroConfig{
		Variant: v, Threads: threads, OpsPer: ops,
		ArrayWords: array, WordsPerOp: words,
		FlushLatency: flush,
		HTM:          htm.Config{},
		YieldEvery:   yieldEvery,
	})
	if err != nil {
		fail(err)
	}
	return r
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// E1/E2: MwCAS microbenchmark under low and high contention.
func e1e2(threads int, sc scale, flush time.Duration) {
	for _, cell := range []struct {
		name  string
		array int
	}{
		{"E1: MwCAS microbenchmark — LOW contention (100k-word array, 4-word ops)", 100000},
		{"E2: MwCAS microbenchmark — HIGH contention (8-word array, 4-word ops)", 8},
	} {
		tbl := harness.NewTable(cell.name,
			"variant", "ops/s", "success", "helps/op", "flushes/op", "htm fallbacks")
		for _, v := range []harness.MicroVariant{harness.VariantMwCAS, harness.VariantPMwCAS, harness.VariantHTM} {
			r := micro(v, threads, sc.microOps, cell.array, 4, flush)
			fb := "-"
			if v == harness.VariantHTM {
				fb = fmt.Sprint(r.HTMStats.Fallbacks)
			}
			tbl.Add(string(v), harness.Throughput(r.OpsPerSec), r.SuccessRate, r.HelpsPer, r.FlushesPer, fb)
		}
		tbl.Print(os.Stdout)
	}
}

// E3: cost vs words per descriptor.
func e3(threads int, sc scale, flush time.Duration) {
	tbl := harness.NewTable("E3: effect of word count per PMwCAS (low contention)",
		"words", "mwcas ops/s", "pmwcas ops/s", "pmwcas flushes/op", "pmwcas overhead")
	for _, w := range []int{1, 2, 4, 8, 16} {
		m := micro(harness.VariantMwCAS, threads, sc.microOps/2, 100000, w, flush)
		p := micro(harness.VariantPMwCAS, threads, sc.microOps/2, 100000, w, flush)
		tbl.Add(w, harness.Throughput(m.OpsPerSec), harness.Throughput(p.OpsPerSec),
			p.FlushesPer, fmt.Sprintf("%.1f%%", harness.OverheadPct(m.OpsPerSec, p.OpsPerSec)))
	}
	tbl.Print(os.Stdout)
}

// E4: persistence cost anatomy (flushes and helps per op).
func e4(threads int, sc scale, flush time.Duration) {
	tbl := harness.NewTable("E4: persistence anatomy (4-word PMwCAS)",
		"contention", "flushes/op", "helps/op", "success")
	for _, cell := range []struct {
		label string
		array int
	}{{"low (100k words)", 100000}, {"medium (1k)", 1024}, {"high (8)", 8}} {
		r := micro(harness.VariantPMwCAS, threads, sc.microOps/2, cell.array, 4, flush)
		tbl.Add(cell.label, r.FlushesPer, r.HelpsPer, r.SuccessRate)
	}
	tbl.Print(os.Stdout)
}

func newStore(mode pmwcas.Mode, flush time.Duration) *pmwcas.Store {
	runtime.GC() // release the previous variant's device before allocating
	s, err := pmwcas.Create(pmwcas.Config{
		Size: 256 << 20, Mode: mode, Descriptors: 4096, MaxHandles: 256,
		FlushLatency: flush, YieldEvery: yieldEvery,
	})
	if err != nil {
		fail(err)
	}
	return s
}

// E5: skip list variants across mixes.
func e5(threads int, sc scale, flush time.Duration) {
	for _, mix := range []struct {
		label string
		mix   harness.Mix
	}{{"read-heavy 90/10", harness.ReadHeavy}, {"update-heavy 50/50", harness.UpdateHeavy}} {
		w := harness.Workload{
			Threads: threads, OpsPer: sc.indexOps, KeySpace: sc.keySpace,
			Dist: harness.Uniform, Mix: mix.mix, Preload: sc.preload,
		}
		tbl := harness.NewTable("E5: skip list — "+mix.label,
			"variant", "ops/s", "flushes/op", "overhead vs cas")
		var base float64

		s := newStore(pmwcas.Volatile, flush)
		cl, err := s.CASSkipList()
		if err != nil {
			fail(err)
		}
		r, err := runMedian(&harness.CASListFactory{List: cl, Label: "cas (volatile)"}, w,
			func() uint64 { return s.Device().Stats().Flushes })
		if err != nil {
			fail(err)
		}
		base = r.OpsPerSec
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer, "-")

		for _, variant := range []struct {
			label string
			mode  pmwcas.Mode
		}{{"mwcas (volatile)", pmwcas.Volatile}, {"pmwcas (persistent)", pmwcas.Persistent}} {
			s := newStore(variant.mode, flush)
			l, err := s.SkipList()
			if err != nil {
				fail(err)
			}
			r, err := runMedian(&harness.SkipListFactory{List: l, Label: variant.label}, w,
				func() uint64 { return s.Device().Stats().Flushes })
			if err != nil {
				fail(err)
			}
			tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
				fmt.Sprintf("%.1f%%", harness.OverheadPct(base, r.OpsPerSec)))
		}
		tbl.Print(os.Stdout)
	}
}

// E6: Bw-tree variants across mixes.
func e6(threads int, sc scale, flush time.Duration) {
	for _, mix := range []struct {
		label string
		mix   harness.Mix
	}{{"read-heavy 90/10", harness.ReadHeavy}, {"update-heavy 50/50", harness.UpdateHeavy}} {
		w := harness.Workload{
			Threads: threads, OpsPer: sc.indexOps, KeySpace: sc.keySpace,
			Dist: harness.Uniform, Mix: mix.mix, Preload: sc.preload,
		}
		tbl := harness.NewTable("E6: Bw-tree — "+mix.label,
			"variant", "ops/s", "flushes/op", "overhead vs cas")
		var base float64
		for i, variant := range []struct {
			label string
			mode  pmwcas.Mode
			smo   pmwcas.SMOMode
		}{
			{"cas (volatile)", pmwcas.Volatile, pmwcas.SMOSingleCAS},
			{"mwcas (volatile)", pmwcas.Volatile, pmwcas.SMOPMwCAS},
			{"pmwcas (persistent)", pmwcas.Persistent, pmwcas.SMOPMwCAS},
		} {
			s := newStore(variant.mode, flush)
			t, err := s.BwTree(pmwcas.BwTreeOptions{SMO: variant.smo})
			if err != nil {
				fail(err)
			}
			r, err := runMedian(&harness.BwTreeFactory{Tree: t, Label: variant.label}, w,
				func() uint64 { return s.Device().Stats().Flushes })
			if err != nil {
				fail(err)
			}
			if i == 0 {
				base = r.OpsPerSec
				tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer, "-")
			} else {
				tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
					fmt.Sprintf("%.1f%%", harness.OverheadPct(base, r.OpsPerSec)))
			}
		}
		tbl.Print(os.Stdout)
	}
}

// E11: traversal flush elision (ROADMAP item 3). Runs the persistent
// skip list and Bw-tree under concurrent workloads with elision off
// (the paper's conservative flush-before-read on every dirty word) and
// on (descend paths use ReadTraverse; only CAS targets are persisted),
// and reports the flush-per-op delta. Read-side flushes are
// contention-driven — a single-threaded run sees almost none because
// phase 2 eagerly persists — so this cell is only meaningful with
// threads > 1 and yield interleaving.
func e11(threads int, sc scale, flush time.Duration) {
	defer core.SetFlushElision(true) // restore the default for later cells
	for _, cell := range []struct {
		label string
		mix   harness.Mix
		dist  harness.Distribution
		keys  uint64
		pre   int
	}{
		{"read-heavy 90/10 uniform", harness.ReadHeavy, harness.Uniform, sc.keySpace, sc.preload},
		{"update-heavy 50/50 uniform", harness.UpdateHeavy, harness.Uniform, sc.keySpace, sc.preload},
		// Zipfian skew over a small key space: traversals repeatedly
		// pass hot, recently-written words, maximizing the dirty
		// encounters the conservative rule would flush.
		{"update-heavy 50/50 zipf hot", harness.UpdateHeavy, harness.Zipf, sc.keySpace >> 6, sc.preload >> 6},
	} {
		w := harness.Workload{
			Threads: threads, OpsPer: sc.indexOps, KeySpace: cell.keys,
			Dist: cell.dist, Mix: cell.mix, Preload: cell.pre,
		}
		tbl := harness.NewTable("E11: traversal flush elision — "+cell.label,
			"index", "elision", "ops/s", "flushes/op", "flush reduction")
		for _, idx := range []string{"skip list", "bw-tree"} {
			var base float64 // flushes/op with elision off
			for _, el := range []struct {
				label string
				on    bool
			}{{"off", false}, {"on", true}} {
				core.SetFlushElision(el.on)
				s := newStore(pmwcas.Persistent, flush)
				var f harness.IndexFactory
				switch idx {
				case "skip list":
					l, err := s.SkipList()
					if err != nil {
						fail(err)
					}
					f = &harness.SkipListFactory{List: l, Label: idx}
				case "bw-tree":
					t, err := s.BwTree(pmwcas.BwTreeOptions{SMO: pmwcas.SMOPMwCAS})
					if err != nil {
						fail(err)
					}
					f = &harness.BwTreeFactory{Tree: t, Label: idx}
				}
				r, err := runMedian(f, w, func() uint64 { return s.Device().Stats().Flushes })
				if err != nil {
					fail(err)
				}
				red := "-"
				if el.on && base > 0 {
					red = fmt.Sprintf("%.1f%%", (1-r.FlushesPer/base)*100)
				} else {
					base = r.FlushesPer
				}
				tbl.Add(idx, el.label, harness.Throughput(r.OpsPerSec), r.FlushesPer, red)
			}
		}
		tbl.Print(os.Stdout)
	}
}

// E7: recovery time.
func e7(sc scale) {
	tbl := harness.NewTable("E7: recovery time vs descriptor pool and in-flight ops",
		"pool", "in-flight", "recovery", "all-or-nothing")
	for _, pool := range sc.recPools {
		for _, inflight := range []int{0, pool / 4, pool} {
			r, err := harness.RunRecovery(harness.RecoveryBench{PoolSize: pool, InFlight: inflight})
			if err != nil {
				fail(err)
			}
			verdict := "OK"
			if !r.CorrectOK {
				verdict = "TORN"
				badRuns++
			}
			tbl.Add(pool, inflight, r.Elapsed, verdict)
		}
	}
	tbl.Print(os.Stdout)
}

// E8: reverse scans, doubly-linked vs baseline fix-up traversal.
func e8(sc scale, flush time.Duration) {
	const scanLen = 100
	tbl := harness.NewTable("E8: reverse range scans (100-key ranges)",
		"variant", "scans/s")

	preload := func(ins func(k, v uint64) error) {
		stride := sc.keySpace / uint64(sc.preload)
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < sc.preload; i++ {
			if err := ins((uint64(i)*stride)%sc.keySpace+1, uint64(i)); err != nil {
				fail(err)
			}
		}
	}
	{
		s := newStore(pmwcas.Volatile, flush)
		cl, err := s.CASSkipList()
		if err != nil {
			fail(err)
		}
		h := cl.NewHandle(1)
		preload(h.Insert)
		kg := harness.NewKeyGen(harness.Uniform, sc.keySpace-scanLen, 7)
		start := time.Now()
		for i := 0; i < sc.scanOps; i++ {
			from := kg.Next()
			if err := h.ScanReverse(from, from+scanLen, func(skiplist.Entry) bool { return true }); err != nil {
				fail(err)
			}
		}
		tbl.Add("cas + prev fix-up", harness.Throughput(float64(sc.scanOps)/time.Since(start).Seconds()))
	}
	{
		s := newStore(pmwcas.Persistent, flush)
		l, err := s.SkipList()
		if err != nil {
			fail(err)
		}
		h := l.NewHandle(1)
		preload(h.Insert)
		kg := harness.NewKeyGen(harness.Uniform, sc.keySpace-scanLen, 7)
		start := time.Now()
		for i := 0; i < sc.scanOps; i++ {
			from := kg.Next()
			if err := h.ScanReverse(from, from+scanLen, func(skiplist.Entry) bool { return true }); err != nil {
				fail(err)
			}
		}
		tbl.Add("pmwcas doubly-linked", harness.Throughput(float64(sc.scanOps)/time.Since(start).Seconds()))
	}
	tbl.Print(os.Stdout)
}

// E9: descriptor space analysis (Appendix B shape).
func e9() {
	tbl := harness.NewTable("E9: descriptor pool space (bytes)",
		"words/desc", "bytes/desc", "pool=4xthreads(48)", "pool=16384")
	for _, w := range []int{4, 8, 16} {
		dev := nvram.New(1 << 20)
		l := nvram.NewLayout(dev)
		pool, err := core.NewPool(core.Config{
			Device: dev, Region: l.Carve(core.PoolSize(64, w)),
			DescriptorCount: 64, WordsPerDescriptor: w, Mode: core.Volatile,
		})
		if err != nil {
			fail(err)
		}
		per, _ := pool.SpaceAnalysis()
		tbl.Add(w, per, per*4*48, per*16384)
	}
	tbl.Print(os.Stdout)
}
