package main

import (
	"fmt"
	"os"
	"time"

	"pmwcas"
	"pmwcas/internal/harness"
)

// Ablations: sweeps over the design knobs DESIGN.md calls out, run with
// -ablations. Unlike E1-E9 these have no direct analogue figure in the
// paper; they quantify the cost model behind the design choices.

func ablations(threads int, sc scale) {
	a1FlushLatency(threads, sc)
	a2PoolSize(threads, sc)
	a3Eviction(threads, sc)
	a4ConsolidationThreshold(threads, sc)
}

// A1: how the persistence overhead scales with NVRAM write-back latency.
// The paper's 1-3%/4-8% overheads were measured with CPU-bound indexes
// where flush latency hides behind other work; this sweep shows overhead
// as a pure function of the CLWB cost.
func a1FlushLatency(threads int, sc scale) {
	tbl := harness.NewTable("A1 (ablation): persistence overhead vs flush latency (4-word MwCAS)",
		"flush latency", "mwcas ops/s", "pmwcas ops/s", "overhead")
	for _, lat := range []time.Duration{0, 50 * time.Nanosecond, 200 * time.Nanosecond, 1000 * time.Nanosecond} {
		m := micro(harness.VariantMwCAS, threads, sc.microOps/4, 100000, 4, lat)
		p := micro(harness.VariantPMwCAS, threads, sc.microOps/4, 100000, 4, lat)
		tbl.Add(lat, harness.Throughput(m.OpsPerSec), harness.Throughput(p.OpsPerSec),
			fmt.Sprintf("%.1f%%", harness.OverheadPct(m.OpsPerSec, p.OpsPerSec)))
	}
	tbl.Print(os.Stdout)
}

// A2: descriptor pool sizing (§5.1 says a small multiple of the thread
// count suffices; this shows what happens as the pool shrinks toward
// that bound and reclamation pressure rises).
func a2PoolSize(threads int, sc scale) {
	tbl := harness.NewTable("A2 (ablation): descriptor pool size (4 threads, 4-word ops)",
		"descriptors", "ops/s", "success")
	for _, descs := range []int{2 * threads, 4 * threads, 16 * threads, 256 * threads} {
		r, err := harness.RunMicro(harness.MicroConfig{
			Variant: harness.VariantPMwCAS, Threads: threads, OpsPer: sc.microOps / 4,
			ArrayWords: 100000, WordsPerOp: 4, Descriptors: descs,
			YieldEvery: yieldEvery,
		})
		if err != nil {
			fail(err)
		}
		tbl.Add(descs, harness.Throughput(r.OpsPerSec), r.SuccessRate)
	}
	tbl.Print(os.Stdout)
}

// A3: opportunistic cache eviction (paper footnote 1): extra write-backs
// the protocol did not ask for. Persistence-correct either way; the
// question is the throughput cost of a noisy cache.
func a3Eviction(threads int, sc scale) {
	tbl := harness.NewTable("A3 (ablation): opportunistic eviction (pmwcas skip list, update-heavy)",
		"evict every", "ops/s", "flushes/op")
	w := harness.Workload{
		Threads: threads, OpsPer: sc.indexOps / 2, KeySpace: sc.keySpace / 4,
		Dist: harness.Uniform, Mix: harness.UpdateHeavy, Preload: sc.preload / 4,
	}
	for _, evict := range []int{0, 16, 4} {
		s, err := pmwcas.Create(pmwcas.Config{
			Size: 256 << 20, Mode: pmwcas.Persistent, Descriptors: 4096,
			MaxHandles: 256, EvictEvery: evict, YieldEvery: yieldEvery,
		})
		if err != nil {
			fail(err)
		}
		l, err := s.SkipList()
		if err != nil {
			fail(err)
		}
		r, err := harness.Run(&harness.SkipListFactory{List: l, Label: "pmwcas"}, w,
			func() uint64 { return s.Device().Stats().Flushes })
		if err != nil {
			fail(err)
		}
		label := "off"
		if evict > 0 {
			label = fmt.Sprintf("%d stores", evict)
		}
		tbl.Add(label, harness.Throughput(r.OpsPerSec), r.FlushesPer)
	}
	tbl.Print(os.Stdout)
}

// A4: Bw-tree consolidation threshold — the classic delta-chain
// trade-off: long chains make writes cheap and reads expensive.
func a4ConsolidationThreshold(threads int, sc scale) {
	tbl := harness.NewTable("A4 (ablation): Bw-tree consolidation threshold (pmwcas, 50/50 mix)",
		"consolidate after", "ops/s", "flushes/op")
	w := harness.Workload{
		Threads: threads, OpsPer: sc.indexOps / 2, KeySpace: sc.keySpace / 4,
		Dist: harness.Uniform, Mix: harness.UpdateHeavy, Preload: sc.preload / 4,
	}
	for _, consol := range []int{2, 8, 32} {
		s, err := pmwcas.Create(pmwcas.Config{
			Size: 256 << 20, Mode: pmwcas.Persistent, Descriptors: 4096,
			MaxHandles: 256, YieldEvery: yieldEvery,
		})
		if err != nil {
			fail(err)
		}
		t, err := s.BwTree(pmwcas.BwTreeOptions{ConsolidateAfter: consol})
		if err != nil {
			fail(err)
		}
		r, err := harness.Run(&harness.BwTreeFactory{Tree: t, Label: "pmwcas"}, w,
			func() uint64 { return s.Device().Stats().Flushes })
		if err != nil {
			fail(err)
		}
		tbl.Add(consol, harness.Throughput(r.OpsPerSec), r.FlushesPer)
	}
	tbl.Print(os.Stdout)
}
