// Command benchdiff compares two pmwcas-loadgen -json result files: a
// committed reference and a fresh run. It prints throughput and latency
// ratios (new/ref) so the perf trajectory is visible in CI logs, and
// exits non-zero only on a schema mismatch — a histogram or field the
// reference promises that the fresh run no longer produces. Ratio
// drift is reported, never failed on: CI machines are too noisy for a
// hard perf gate, but a silently vanished metric is a code bug.
//
// With -allocs the inputs are instead `go test -bench -benchmem` text
// output, and the gate hardens: allocs/op is deterministic, so any
// benchmark whose fresh allocs/op exceeds the committed reference —
// or that vanished from the fresh run — fails the diff (DESIGN.md
// §6.3: the dynamic half of the hot-path allocation budget; the
// static half is pmwcaslint's hotpath analyzer).
//
// Usage:
//
//	benchdiff -ref bench/BENCH_server.json -new BENCH_server.json
//	benchdiff -allocs -ref BENCH_allocs.txt -new allocs-ci.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result mirrors the pmwcas-loadgen -json schema loosely: unknown
// fields are tolerated (the schema may grow), absent ones are the
// mismatch this tool exists to catch.
type result struct {
	ElapsedNs int64                  `json:"elapsed_ns"`
	TotalOps  int                    `json:"total_ops"`
	Errors    int                    `json:"errors"`
	OpsPerSec float64                `json:"ops_per_sec"`
	LatencyNs *latency               `json:"latency_ns"`
	Server    map[string]histSummary `json:"server"`
}

type latency struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

type histSummary struct {
	Count uint64 `json:"count"`
	Mean  uint64 `json:"mean"`
	P50   uint64 `json:"p50"`
	P95   uint64 `json:"p95"`
	P99   uint64 `json:"p99"`
	Max   uint64 `json:"max"`
}

func main() {
	refPath := flag.String("ref", "", "committed reference result (required)")
	newPath := flag.String("new", "", "fresh run result (required)")
	allocsMode := flag.Bool("allocs", false, "inputs are `go test -bench -benchmem` output; fail on any allocs/op regression")
	flag.Parse()
	if *refPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *allocsMode {
		os.Exit(diffAllocs(*refPath, *newPath))
	}

	ref, err := load(*refPath)
	if err != nil {
		fatalf("%v", err)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fatalf("%v", err)
	}

	mismatches := checkSchema(ref, fresh)

	fmt.Printf("throughput: %.0f -> %.0f ops/s (x%.2f)\n",
		ref.OpsPerSec, fresh.OpsPerSec, ratio(fresh.OpsPerSec, ref.OpsPerSec))
	if ref.LatencyNs != nil && fresh.LatencyNs != nil {
		fmt.Printf("client latency: p50 x%.2f  p90 x%.2f  p99 x%.2f  max x%.2f\n",
			ratio(float64(fresh.LatencyNs.P50), float64(ref.LatencyNs.P50)),
			ratio(float64(fresh.LatencyNs.P90), float64(ref.LatencyNs.P90)),
			ratio(float64(fresh.LatencyNs.P99), float64(ref.LatencyNs.P99)),
			ratio(float64(fresh.LatencyNs.Max), float64(ref.LatencyNs.Max)))
	}
	names := make([]string, 0, len(ref.Server))
	for n := range ref.Server {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		nh, ok := fresh.Server[n]
		if !ok {
			continue // already a schema mismatch, reported below
		}
		rh := ref.Server[n]
		fmt.Printf("%-32s p50 %6d -> %6d (x%.2f)  p99 %6d -> %6d (x%.2f)\n",
			n, rh.P50, nh.P50, ratio(float64(nh.P50), float64(rh.P50)),
			rh.P99, nh.P99, ratio(float64(nh.P99), float64(rh.P99)))
	}

	if len(mismatches) > 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: schema mismatch — the fresh run is missing:")
		for _, m := range mismatches {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Println("schema: OK (every reference metric present in the fresh run)")
}

// checkSchema returns everything the reference has that fresh lacks.
func checkSchema(ref, fresh *result) []string {
	var missing []string
	if fresh.TotalOps == 0 {
		missing = append(missing, "total_ops (zero — run did no work?)")
	}
	if ref.LatencyNs != nil && fresh.LatencyNs == nil {
		missing = append(missing, "latency_ns")
	}
	names := make([]string, 0, len(ref.Server))
	for n := range ref.Server {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, ok := fresh.Server[n]; !ok {
			missing = append(missing, "server."+n)
		}
	}
	return missing
}

func load(path string) (*result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}

// allocResult is one -benchmem benchmark line, keyed by package + name
// (the same benchmark name recurs across index packages).
type allocResult struct {
	nsPerOp     float64
	bytesPerOp  int64
	allocsPerOp int64
}

// benchLineRE matches `BenchmarkX[-procs] <iters> <ns> ns/op <B> B/op <allocs> allocs/op`.
var benchLineRE = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

// parseBenchFile reads `go test -bench -benchmem` output, tracking the
// `pkg:` context lines so identically named benchmarks in different
// packages stay distinct.
func parseBenchFile(path string) (map[string]allocResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]allocResult)
	pkg := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		bytes, _ := strconv.ParseInt(m[3], 10, 64)
		allocs, _ := strconv.ParseInt(m[4], 10, 64)
		out[pkg+"."+m[1]] = allocResult{nsPerOp: ns, bytesPerOp: bytes, allocsPerOp: allocs}
	}
	return out, sc.Err()
}

// diffAllocs gates allocs/op against the committed budget: a fresh run
// must produce every reference benchmark at no more allocs/op than the
// reference recorded. ns/op and B/op are printed for context only.
func diffAllocs(refPath, newPath string) int {
	ref, err := parseBenchFile(refPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 1
	}
	if len(ref) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %s holds no -benchmem benchmark lines\n", refPath)
		return 1
	}
	fresh, err := parseBenchFile(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 1
	}

	names := make([]string, 0, len(ref))
	for n := range ref {
		names = append(names, n)
	}
	sort.Strings(names)
	var failures []string
	for _, n := range names {
		r := ref[n]
		f, ok := fresh[n]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from the fresh run", n))
			continue
		}
		verdict := "OK"
		if f.allocsPerOp > r.allocsPerOp {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op, budget %d", n, f.allocsPerOp, r.allocsPerOp))
		}
		fmt.Printf("%-60s %3d -> %3d allocs/op  %5d -> %5d B/op  (%.0f -> %.0f ns/op)  %s\n",
			n, r.allocsPerOp, f.allocsPerOp, r.bytesPerOp, f.bytesPerOp,
			r.nsPerOp, f.nsPerOp, verdict)
	}
	for n := range fresh {
		if _, ok := ref[n]; !ok {
			fmt.Printf("%-60s (new benchmark, no budget yet — re-baseline to gate it)\n", n)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: allocation budget exceeded:")
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		return 1
	}
	fmt.Println("allocs: OK (every benchmark within its committed budget)")
	return 0
}
