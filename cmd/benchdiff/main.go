// Command benchdiff compares two pmwcas-loadgen -json result files: a
// committed reference and a fresh run. It prints throughput and latency
// ratios (new/ref) so the perf trajectory is visible in CI logs, and
// exits non-zero only on a schema mismatch — a histogram or field the
// reference promises that the fresh run no longer produces. Ratio
// drift is reported, never failed on: CI machines are too noisy for a
// hard perf gate, but a silently vanished metric is a code bug.
//
// Usage:
//
//	benchdiff -ref bench/BENCH_server.json -new BENCH_server.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// result mirrors the pmwcas-loadgen -json schema loosely: unknown
// fields are tolerated (the schema may grow), absent ones are the
// mismatch this tool exists to catch.
type result struct {
	ElapsedNs int64                  `json:"elapsed_ns"`
	TotalOps  int                    `json:"total_ops"`
	Errors    int                    `json:"errors"`
	OpsPerSec float64                `json:"ops_per_sec"`
	LatencyNs *latency               `json:"latency_ns"`
	Server    map[string]histSummary `json:"server"`
}

type latency struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

type histSummary struct {
	Count uint64 `json:"count"`
	Mean  uint64 `json:"mean"`
	P50   uint64 `json:"p50"`
	P95   uint64 `json:"p95"`
	P99   uint64 `json:"p99"`
	Max   uint64 `json:"max"`
}

func main() {
	refPath := flag.String("ref", "", "committed reference result (required)")
	newPath := flag.String("new", "", "fresh run result (required)")
	flag.Parse()
	if *refPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	ref, err := load(*refPath)
	if err != nil {
		fatalf("%v", err)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fatalf("%v", err)
	}

	mismatches := checkSchema(ref, fresh)

	fmt.Printf("throughput: %.0f -> %.0f ops/s (x%.2f)\n",
		ref.OpsPerSec, fresh.OpsPerSec, ratio(fresh.OpsPerSec, ref.OpsPerSec))
	if ref.LatencyNs != nil && fresh.LatencyNs != nil {
		fmt.Printf("client latency: p50 x%.2f  p90 x%.2f  p99 x%.2f  max x%.2f\n",
			ratio(float64(fresh.LatencyNs.P50), float64(ref.LatencyNs.P50)),
			ratio(float64(fresh.LatencyNs.P90), float64(ref.LatencyNs.P90)),
			ratio(float64(fresh.LatencyNs.P99), float64(ref.LatencyNs.P99)),
			ratio(float64(fresh.LatencyNs.Max), float64(ref.LatencyNs.Max)))
	}
	names := make([]string, 0, len(ref.Server))
	for n := range ref.Server {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		nh, ok := fresh.Server[n]
		if !ok {
			continue // already a schema mismatch, reported below
		}
		rh := ref.Server[n]
		fmt.Printf("%-32s p50 %6d -> %6d (x%.2f)  p99 %6d -> %6d (x%.2f)\n",
			n, rh.P50, nh.P50, ratio(float64(nh.P50), float64(rh.P50)),
			rh.P99, nh.P99, ratio(float64(nh.P99), float64(rh.P99)))
	}

	if len(mismatches) > 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: schema mismatch — the fresh run is missing:")
		for _, m := range mismatches {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Println("schema: OK (every reference metric present in the fresh run)")
}

// checkSchema returns everything the reference has that fresh lacks.
func checkSchema(ref, fresh *result) []string {
	var missing []string
	if fresh.TotalOps == 0 {
		missing = append(missing, "total_ops (zero — run did no work?)")
	}
	if ref.LatencyNs != nil && fresh.LatencyNs == nil {
		missing = append(missing, "latency_ns")
	}
	names := make([]string, 0, len(ref.Server))
	for n := range ref.Server {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, ok := fresh.Server[n]; !ok {
			missing = append(missing, "server."+n)
		}
	}
	return missing
}

func load(path string) (*result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
