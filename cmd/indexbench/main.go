// Command indexbench runs the index workload experiments (E5, E6, E7,
// E8): skip list, Bw-tree, and hash table throughput across
// implementation variants (single-word-CAS baseline, volatile MwCAS,
// persistent PMwCAS), operation mixes, and key distributions, plus the
// reverse-scan comparison the doubly-linked skip list exists for.
//
// Usage:
//
//	indexbench [-index skiplist|bwtree|hash|both|all] [-threads n] [-ops n]
//	           [-keys n] [-dist uniform|zipf] [-mix readheavy|updateheavy|...]
//	           [-flushns n] [-reverse]
//	indexbench -matrix [-json out.json] [-threads n] [-ops n] [-keys n] [-flushns n]
//
// -matrix runs the cross-index evaluation: all three persistent indexes
// through load / read / scan / mixed workloads under uniform and zipfian
// key draws, one table. -json additionally writes the matrix as
// machine-readable JSON (the format committed as BENCH_indexmatrix.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pmwcas"
	"pmwcas/internal/harness"
)

func main() {
	index := flag.String("index", "both", "skiplist, bwtree, hash, both (ordered indexes), or all")
	threads := flag.Int("threads", 4, "worker goroutines")
	ops := flag.Int("ops", 20000, "operations per thread")
	keys := flag.Uint64("keys", 1<<16, "key space size")
	dist := flag.String("dist", "uniform", "uniform, zipf, or sequential")
	mixName := flag.String("mix", "readheavy", "readonly, readheavy, updateheavy, insertdelete, scanheavy")
	flushNS := flag.Int("flushns", 0, "simulated CLWB latency in ns")
	reverse := flag.Bool("reverse", false, "run the reverse-scan comparison (E8)")
	matrix := flag.Bool("matrix", false, "run the cross-index matrix (all indexes x workloads x distributions)")
	shardsFlag := flag.String("shards", "", "comma-separated shard counts (e.g. 1,2,4,8): run the sharded hash matrix")
	yieldEvery := flag.Int("yieldevery", 0, "with -shards: yield the processor every n device accesses (emulates fine-grained interleaving on few-core hosts)")
	jsonPath := flag.String("json", "", "with -matrix or -shards: also write results as JSON to this file")
	flag.Parse()

	mix, ok := map[string]harness.Mix{
		"readonly":     harness.ReadOnly,
		"readheavy":    harness.ReadHeavy,
		"updateheavy":  harness.UpdateHeavy,
		"insertdelete": harness.InsertDelete,
		"scanheavy":    harness.ScanHeavy,
	}[*mixName]
	if !ok {
		fmt.Fprintf(os.Stderr, "indexbench: unknown mix %q\n", *mixName)
		os.Exit(1)
	}
	d, ok := map[string]harness.Distribution{
		"uniform":    harness.Uniform,
		"zipf":       harness.Zipf,
		"sequential": harness.Sequential,
	}[*dist]
	if !ok {
		fmt.Fprintf(os.Stderr, "indexbench: unknown distribution %q\n", *dist)
		os.Exit(1)
	}

	w := harness.Workload{
		Threads:  *threads,
		OpsPer:   *ops,
		KeySpace: *keys,
		Dist:     d,
		Mix:      mix,
		Preload:  int(*keys / 2),
	}
	flush := time.Duration(*flushNS) * time.Nanosecond

	if *matrix {
		runMatrix(w, flush, *jsonPath)
		return
	}
	if *shardsFlag != "" {
		counts, err := parseShards(*shardsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "indexbench:", err)
			os.Exit(2)
		}
		runShardMatrix(w, flush, counts, *yieldEvery, *jsonPath)
		return
	}
	if *jsonPath != "" {
		fmt.Fprintln(os.Stderr, "indexbench: -json requires -matrix or -shards")
		os.Exit(2)
	}
	if *reverse {
		runReverse(w, flush)
		return
	}
	switch *index {
	case "skiplist", "bwtree", "hash", "both", "all":
	default:
		fmt.Fprintf(os.Stderr, "indexbench: unknown index %q (want skiplist, bwtree, hash, both, or all)\n", *index)
		flag.Usage()
		os.Exit(2)
	}
	if (*index == "hash" || *index == "all") && w.Mix.Scans > 0 {
		fmt.Fprintln(os.Stderr, "indexbench: the hash index is unordered and does not support scan mixes")
		os.Exit(2)
	}
	if *index == "skiplist" || *index == "both" || *index == "all" {
		runSkipList(w, flush)
	}
	if *index == "bwtree" || *index == "both" || *index == "all" {
		runBwTree(w, flush)
	}
	if *index == "hash" || *index == "all" {
		runHash(w, flush)
	}
}

// storeFor builds one store per variant run so variants never share a heap.
func storeFor(mode pmwcas.Mode, flush time.Duration) *pmwcas.Store {
	s, err := pmwcas.Create(pmwcas.Config{
		Size:         256 << 20,
		Mode:         mode,
		Descriptors:  4096,
		MaxHandles:   256,
		FlushLatency: flush,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "indexbench:", err)
		os.Exit(1)
	}
	return s
}

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "indexbench:", err)
		os.Exit(1)
	}
	return v
}

func runSkipList(w harness.Workload, flush time.Duration) {
	tbl := harness.NewTable(
		fmt.Sprintf("E5: skip list — %d threads, %s, %s", w.Threads, w.Dist, mixLabel(w.Mix)),
		"variant", "ops/s", "flushes/op", "overhead vs cas")
	var baseline float64

	{
		s := storeFor(pmwcas.Volatile, flush)
		cl := must(s.CASSkipList())
		r := must(harness.Run(&harness.CASListFactory{List: cl, Label: "cas (volatile)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		baseline = r.OpsPerSec
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer, "-")
	}
	{
		s := storeFor(pmwcas.Volatile, flush)
		l := must(s.SkipList())
		r := must(harness.Run(&harness.SkipListFactory{List: l, Label: "mwcas (volatile)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
			fmt.Sprintf("%.1f%%", harness.OverheadPct(baseline, r.OpsPerSec)))
	}
	{
		s := storeFor(pmwcas.Persistent, flush)
		l := must(s.SkipList())
		r := must(harness.Run(&harness.SkipListFactory{List: l, Label: "pmwcas (persistent)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
			fmt.Sprintf("%.1f%%", harness.OverheadPct(baseline, r.OpsPerSec)))
	}
	tbl.Print(os.Stdout)
}

func runBwTree(w harness.Workload, flush time.Duration) {
	tbl := harness.NewTable(
		fmt.Sprintf("E6: Bw-tree — %d threads, %s, %s", w.Threads, w.Dist, mixLabel(w.Mix)),
		"variant", "ops/s", "flushes/op", "overhead vs cas")
	var baseline float64

	{
		s := storeFor(pmwcas.Volatile, flush)
		t := must(s.BwTree(pmwcas.BwTreeOptions{SMO: pmwcas.SMOSingleCAS}))
		r := must(harness.Run(&harness.BwTreeFactory{Tree: t, Label: "cas (volatile)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		baseline = r.OpsPerSec
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer, "-")
	}
	{
		s := storeFor(pmwcas.Volatile, flush)
		t := must(s.BwTree(pmwcas.BwTreeOptions{SMO: pmwcas.SMOPMwCAS}))
		r := must(harness.Run(&harness.BwTreeFactory{Tree: t, Label: "mwcas (volatile)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
			fmt.Sprintf("%.1f%%", harness.OverheadPct(baseline, r.OpsPerSec)))
	}
	{
		s := storeFor(pmwcas.Persistent, flush)
		t := must(s.BwTree(pmwcas.BwTreeOptions{SMO: pmwcas.SMOPMwCAS}))
		r := must(harness.Run(&harness.BwTreeFactory{Tree: t, Label: "pmwcas (persistent)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
			fmt.Sprintf("%.1f%%", harness.OverheadPct(baseline, r.OpsPerSec)))
	}
	tbl.Print(os.Stdout)
}

// runHash measures E7: the hash table has no single-word-CAS baseline
// (every mutation is inherently multi-word), so the volatile MwCAS run
// is the reference the persistence overhead is charged against.
func runHash(w harness.Workload, flush time.Duration) {
	tbl := harness.NewTable(
		fmt.Sprintf("E7: hash table — %d threads, %s, %s", w.Threads, w.Dist, mixLabel(w.Mix)),
		"variant", "ops/s", "flushes/op", "overhead vs volatile")
	var baseline float64

	{
		s := storeFor(pmwcas.Volatile, flush)
		t := must(s.HashTable(pmwcas.HashTableOptions{}))
		r := must(harness.Run(&harness.HashTableFactory{Table: t, Label: "mwcas (volatile)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		baseline = r.OpsPerSec
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer, "-")
	}
	{
		s := storeFor(pmwcas.Persistent, flush)
		t := must(s.HashTable(pmwcas.HashTableOptions{}))
		r := must(harness.Run(&harness.HashTableFactory{Table: t, Label: "pmwcas (persistent)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
			fmt.Sprintf("%.1f%%", harness.OverheadPct(baseline, r.OpsPerSec)))
	}
	tbl.Print(os.Stdout)
}

// matrixCell is one measured (index, workload, distribution) point of the
// cross-index matrix — the JSON record format of BENCH_indexmatrix.json.
type matrixCell struct {
	Index        string  `json:"index"`
	Workload     string  `json:"workload"`
	Dist         string  `json:"dist"`
	Supported    bool    `json:"supported"`
	OpsPerSec    float64 `json:"ops_per_sec,omitempty"`
	FlushesPerOp float64 `json:"flushes_per_op,omitempty"`
}

// matrixDoc is the JSON envelope: the parameters the numbers were
// measured under travel with them.
type matrixDoc struct {
	Bench        string       `json:"bench"`
	Threads      int          `json:"threads"`
	OpsPerThread int          `json:"ops_per_thread"`
	KeySpace     uint64       `json:"key_space"`
	FlushNS      int64        `json:"flush_ns"`
	Results      []matrixCell `json:"results"`
}

// runMatrix is the cross-index evaluation: every persistent index
// through four workload shapes under two key distributions. Scan on the
// hash index is reported as unsupported rather than measured — a hash
// table faking a range scan would be benchmarking a lie.
func runMatrix(w harness.Workload, flush time.Duration, jsonPath string) {
	shapes := []struct {
		name    string
		mix     harness.Mix
		preload bool
	}{
		{"load", harness.Mix{Inserts: 100}, false},
		{"read", harness.ReadHeavy, true},
		{"scan", harness.ScanHeavy, true},
		{"mixed", harness.UpdateHeavy, true},
	}
	dists := []harness.Distribution{harness.Uniform, harness.Zipf}
	indexes := []string{"skiplist", "bwtree", "hash"}

	tbl := harness.NewTable(
		fmt.Sprintf("Index matrix — persistent stores, %d threads, %d keys", w.Threads, w.KeySpace),
		"index", "workload", "dist", "ops/s", "flushes/op")
	doc := matrixDoc{
		Bench:        "indexmatrix",
		Threads:      w.Threads,
		OpsPerThread: w.OpsPer,
		KeySpace:     w.KeySpace,
		FlushNS:      flush.Nanoseconds(),
	}
	for _, ix := range indexes {
		for _, shape := range shapes {
			for _, d := range dists {
				cell := matrixCell{Index: ix, Workload: shape.name, Dist: d.String()}
				if ix == "hash" && shape.mix.Scans > 0 {
					tbl.Add(ix, shape.name, d.String(), "n/a (unordered)", "-")
					doc.Results = append(doc.Results, cell)
					continue
				}
				cw := w
				cw.Mix = shape.mix
				cw.Dist = d
				if !shape.preload {
					cw.Preload = 0
				}
				s := storeFor(pmwcas.Persistent, flush)
				r := must(harness.Run(matrixFactory(s, ix), cw,
					func() uint64 { return s.Device().Stats().Flushes }))
				cell.Supported = true
				cell.OpsPerSec = r.OpsPerSec
				cell.FlushesPerOp = r.FlushesPer
				doc.Results = append(doc.Results, cell)
				tbl.Add(ix, shape.name, d.String(), harness.Throughput(r.OpsPerSec), r.FlushesPer)
			}
		}
	}
	tbl.Print(os.Stdout)

	if jsonPath != "" {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "indexbench:", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "indexbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// matrixFactory opens index ix on store s in its matrix configuration.
func matrixFactory(s *pmwcas.Store, ix string) harness.IndexFactory {
	switch ix {
	case "skiplist":
		return &harness.SkipListFactory{List: must(s.SkipList()), Label: "skiplist"}
	case "bwtree":
		return &harness.BwTreeFactory{Tree: must(s.BwTree(pmwcas.BwTreeOptions{})), Label: "bwtree"}
	case "hash":
		return &harness.HashTableFactory{Table: must(s.HashTable(pmwcas.HashTableOptions{})), Label: "hash"}
	}
	panic("indexbench: unreachable index " + ix)
}

// parseShards parses the -shards list.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// shardCell is one measured (shards, workload, distribution) point —
// the JSON record format of BENCH_shardmatrix.json.
type shardCell struct {
	Shards       int     `json:"shards"`
	Workload     string  `json:"workload"`
	Dist         string  `json:"dist"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	FlushesPerOp float64 `json:"flushes_per_op"`
}

type shardDoc struct {
	Bench        string      `json:"bench"`
	Threads      int         `json:"threads"`
	OpsPerThread int         `json:"ops_per_thread"`
	KeySpace     uint64      `json:"key_space"`
	FlushNS      int64       `json:"flush_ns"`
	YieldEvery   int         `json:"yield_every"`
	Results      []shardCell `json:"results"`
}

// shardStoreFor builds a persistent store with n shards and the same
// total resource budget regardless of n: the device size and descriptor
// total are fixed, so every run gets identical memory and descriptor
// capacity, just partitioned differently.
func shardStoreFor(n int, flush time.Duration, yieldEvery int) *pmwcas.Store {
	descriptors := 4096 / n
	if descriptors < 256 {
		descriptors = 256
	}
	s, err := pmwcas.Create(pmwcas.Config{
		Size:         256 << 20,
		Mode:         pmwcas.Persistent,
		Shards:       n,
		Descriptors:  descriptors,
		MaxHandles:   64,
		FlushLatency: flush,
		YieldEvery:   yieldEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "indexbench:", err)
		os.Exit(1)
	}
	return s
}

// shardedHashFactory routes keys across per-shard hash tables with
// Store.ShardForKey — the same placement the server's sharded backend
// uses, measured without the network in the way.
type shardedHashFactory struct {
	store *pmwcas.Store
	tabs  []*pmwcas.HashTable
	label string
}

func newShardedHashFactory(s *pmwcas.Store, label string) *shardedHashFactory {
	f := &shardedHashFactory{store: s, label: label}
	for i := 0; i < s.ShardCount(); i++ {
		f.tabs = append(f.tabs, must(s.Shard(i).HashTable(pmwcas.HashTableOptions{})))
	}
	return f
}

func (f *shardedHashFactory) Name() string { return f.label }

func (f *shardedHashFactory) NewOps(seed int64) harness.IndexOps {
	o := &shardedHashOps{store: f.store}
	for _, t := range f.tabs {
		o.hs = append(o.hs, t.NewHandle())
	}
	return o
}

type shardedHashOps struct {
	store *pmwcas.Store
	hs    []*pmwcas.HashTableHandle
}

func (o *shardedHashOps) h(key uint64) *pmwcas.HashTableHandle {
	return o.hs[o.store.ShardForKey(key)]
}

func (o *shardedHashOps) Insert(k, v uint64) error     { return o.h(k).Insert(k, v) }
func (o *shardedHashOps) Get(k uint64) (uint64, error) { return o.h(k).Get(k) }
func (o *shardedHashOps) Update(k, v uint64) error     { return o.h(k).Update(k, v) }
func (o *shardedHashOps) Delete(k uint64) error        { return o.h(k).Delete(k) }
func (o *shardedHashOps) Scan(from, to uint64, fn func(uint64, uint64) bool) error {
	return pmwcas.ErrHashUnordered
}

// runShardMatrix measures the shard-per-core engine: the hash index
// across shard counts, workload shapes, and key distributions, with the
// total device/descriptor budget held constant so the only variable is
// how the store is partitioned.
func runShardMatrix(w harness.Workload, flush time.Duration, counts []int, yieldEvery int, jsonPath string) {
	shapes := []struct {
		name    string
		mix     harness.Mix
		preload bool
	}{
		{"load", harness.Mix{Inserts: 100}, false},
		{"read", harness.ReadHeavy, true},
		{"mixed", harness.UpdateHeavy, true},
	}
	dists := []harness.Distribution{harness.Uniform, harness.Zipf}

	tbl := harness.NewTable(
		fmt.Sprintf("Shard matrix — persistent hash index, %d threads, %d keys", w.Threads, w.KeySpace),
		"shards", "workload", "dist", "ops/s", "flushes/op")
	doc := shardDoc{
		Bench:        "shardmatrix",
		Threads:      w.Threads,
		OpsPerThread: w.OpsPer,
		KeySpace:     w.KeySpace,
		FlushNS:      flush.Nanoseconds(),
		YieldEvery:   yieldEvery,
	}
	for _, n := range counts {
		for _, shape := range shapes {
			for _, d := range dists {
				cw := w
				cw.Mix = shape.mix
				cw.Dist = d
				if !shape.preload {
					cw.Preload = 0
				}
				s := shardStoreFor(n, flush, yieldEvery)
				f := newShardedHashFactory(s, fmt.Sprintf("hash/%dshard", n))
				r := must(harness.Run(f, cw,
					func() uint64 { return s.Device().Stats().Flushes }))
				doc.Results = append(doc.Results, shardCell{
					Shards: n, Workload: shape.name, Dist: d.String(),
					OpsPerSec: r.OpsPerSec, FlushesPerOp: r.FlushesPer,
				})
				tbl.Add(fmt.Sprint(n), shape.name, d.String(),
					harness.Throughput(r.OpsPerSec), r.FlushesPer)
			}
		}
	}
	tbl.Print(os.Stdout)

	if jsonPath != "" {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "indexbench:", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "indexbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// runReverse measures E8: reverse scans on the doubly-linked list vs the
// baseline's validate-and-repair prev traversal.
func runReverse(w harness.Workload, flush time.Duration) {
	const scanLen = 100
	tbl := harness.NewTable(
		fmt.Sprintf("E8: reverse scans (%d keys preloaded, %d-key ranges)", w.Preload, scanLen),
		"variant", "scans/s")

	type scanner interface {
		harness.IndexOps
	}
	run := func(label string, ops scanner, rs harness.ReverseScanner) {
		// Preload.
		stride := w.KeySpace / uint64(w.Preload)
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < w.Preload; i++ {
			if err := ops.Insert((uint64(i)*stride)%w.KeySpace+1, uint64(i)); err != nil {
				fmt.Fprintln(os.Stderr, "indexbench: preload:", err)
				os.Exit(1)
			}
		}
		kg := harness.NewKeyGen(harness.Uniform, w.KeySpace-scanLen, 99)
		start := time.Now()
		n := w.Threads * w.OpsPer
		for i := 0; i < n; i++ {
			from := kg.Next()
			if err := rs.ScanReverse(from, from+scanLen, func(uint64, uint64) bool { return true }); err != nil {
				fmt.Fprintln(os.Stderr, "indexbench: scan:", err)
				os.Exit(1)
			}
		}
		tbl.Add(label, harness.Throughput(float64(n)/time.Since(start).Seconds()))
	}

	{
		s := storeFor(pmwcas.Volatile, flush)
		cl := must(s.CASSkipList())
		f := &harness.CASListFactory{List: cl, Label: "cas"}
		ops := f.NewOps(1)
		run("cas singly-linked + fixup", ops, ops.(harness.ReverseScanner))
	}
	{
		s := storeFor(pmwcas.Persistent, flush)
		l := must(s.SkipList())
		f := &harness.SkipListFactory{List: l, Label: "pmwcas"}
		ops := f.NewOps(1)
		run("pmwcas doubly-linked", ops, ops.(harness.ReverseScanner))
	}
	tbl.Print(os.Stdout)
}

func mixLabel(m harness.Mix) string {
	return fmt.Sprintf("r%d/i%d/u%d/d%d/s%d", m.Reads, m.Inserts, m.Updates, m.Deletes, m.Scans)
}
