// Command indexbench runs the index workload experiments (E5, E6, E8):
// skip list and Bw-tree throughput across implementation variants
// (single-word-CAS baseline, volatile MwCAS, persistent PMwCAS),
// operation mixes, and key distributions, plus the reverse-scan
// comparison the doubly-linked skip list exists for.
//
// Usage:
//
//	indexbench [-index skiplist|bwtree|both] [-threads n] [-ops n]
//	           [-keys n] [-dist uniform|zipf] [-mix readheavy|updateheavy|...]
//	           [-flushns n] [-reverse]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmwcas"
	"pmwcas/internal/harness"
)

func main() {
	index := flag.String("index", "both", "skiplist, bwtree, or both")
	threads := flag.Int("threads", 4, "worker goroutines")
	ops := flag.Int("ops", 20000, "operations per thread")
	keys := flag.Uint64("keys", 1<<16, "key space size")
	dist := flag.String("dist", "uniform", "uniform, zipf, or sequential")
	mixName := flag.String("mix", "readheavy", "readonly, readheavy, updateheavy, insertdelete, scanheavy")
	flushNS := flag.Int("flushns", 0, "simulated CLWB latency in ns")
	reverse := flag.Bool("reverse", false, "run the reverse-scan comparison (E8)")
	flag.Parse()

	mix, ok := map[string]harness.Mix{
		"readonly":     harness.ReadOnly,
		"readheavy":    harness.ReadHeavy,
		"updateheavy":  harness.UpdateHeavy,
		"insertdelete": harness.InsertDelete,
		"scanheavy":    harness.ScanHeavy,
	}[*mixName]
	if !ok {
		fmt.Fprintf(os.Stderr, "indexbench: unknown mix %q\n", *mixName)
		os.Exit(1)
	}
	d, ok := map[string]harness.Distribution{
		"uniform":    harness.Uniform,
		"zipf":       harness.Zipf,
		"sequential": harness.Sequential,
	}[*dist]
	if !ok {
		fmt.Fprintf(os.Stderr, "indexbench: unknown distribution %q\n", *dist)
		os.Exit(1)
	}

	w := harness.Workload{
		Threads:  *threads,
		OpsPer:   *ops,
		KeySpace: *keys,
		Dist:     d,
		Mix:      mix,
		Preload:  int(*keys / 2),
	}
	flush := time.Duration(*flushNS) * time.Nanosecond

	if *reverse {
		runReverse(w, flush)
		return
	}
	if *index == "skiplist" || *index == "both" {
		runSkipList(w, flush)
	}
	if *index == "bwtree" || *index == "both" {
		runBwTree(w, flush)
	}
}

// storeFor builds one store per variant run so variants never share a heap.
func storeFor(mode pmwcas.Mode, flush time.Duration) *pmwcas.Store {
	s, err := pmwcas.Create(pmwcas.Config{
		Size:         256 << 20,
		Mode:         mode,
		Descriptors:  4096,
		MaxHandles:   256,
		FlushLatency: flush,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "indexbench:", err)
		os.Exit(1)
	}
	return s
}

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "indexbench:", err)
		os.Exit(1)
	}
	return v
}

func runSkipList(w harness.Workload, flush time.Duration) {
	tbl := harness.NewTable(
		fmt.Sprintf("E5: skip list — %d threads, %s, %s", w.Threads, w.Dist, mixLabel(w.Mix)),
		"variant", "ops/s", "flushes/op", "overhead vs cas")
	var baseline float64

	{
		s := storeFor(pmwcas.Volatile, flush)
		cl := must(s.CASSkipList())
		r := must(harness.Run(&harness.CASListFactory{List: cl, Label: "cas (volatile)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		baseline = r.OpsPerSec
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer, "-")
	}
	{
		s := storeFor(pmwcas.Volatile, flush)
		l := must(s.SkipList())
		r := must(harness.Run(&harness.SkipListFactory{List: l, Label: "mwcas (volatile)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
			fmt.Sprintf("%.1f%%", harness.OverheadPct(baseline, r.OpsPerSec)))
	}
	{
		s := storeFor(pmwcas.Persistent, flush)
		l := must(s.SkipList())
		r := must(harness.Run(&harness.SkipListFactory{List: l, Label: "pmwcas (persistent)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
			fmt.Sprintf("%.1f%%", harness.OverheadPct(baseline, r.OpsPerSec)))
	}
	tbl.Print(os.Stdout)
}

func runBwTree(w harness.Workload, flush time.Duration) {
	tbl := harness.NewTable(
		fmt.Sprintf("E6: Bw-tree — %d threads, %s, %s", w.Threads, w.Dist, mixLabel(w.Mix)),
		"variant", "ops/s", "flushes/op", "overhead vs cas")
	var baseline float64

	{
		s := storeFor(pmwcas.Volatile, flush)
		t := must(s.BwTree(pmwcas.BwTreeOptions{SMO: pmwcas.SMOSingleCAS}))
		r := must(harness.Run(&harness.BwTreeFactory{Tree: t, Label: "cas (volatile)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		baseline = r.OpsPerSec
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer, "-")
	}
	{
		s := storeFor(pmwcas.Volatile, flush)
		t := must(s.BwTree(pmwcas.BwTreeOptions{SMO: pmwcas.SMOPMwCAS}))
		r := must(harness.Run(&harness.BwTreeFactory{Tree: t, Label: "mwcas (volatile)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
			fmt.Sprintf("%.1f%%", harness.OverheadPct(baseline, r.OpsPerSec)))
	}
	{
		s := storeFor(pmwcas.Persistent, flush)
		t := must(s.BwTree(pmwcas.BwTreeOptions{SMO: pmwcas.SMOPMwCAS}))
		r := must(harness.Run(&harness.BwTreeFactory{Tree: t, Label: "pmwcas (persistent)"}, w,
			func() uint64 { return s.Device().Stats().Flushes }))
		tbl.Add(r.Variant, harness.Throughput(r.OpsPerSec), r.FlushesPer,
			fmt.Sprintf("%.1f%%", harness.OverheadPct(baseline, r.OpsPerSec)))
	}
	tbl.Print(os.Stdout)
}

// runReverse measures E8: reverse scans on the doubly-linked list vs the
// baseline's validate-and-repair prev traversal.
func runReverse(w harness.Workload, flush time.Duration) {
	const scanLen = 100
	tbl := harness.NewTable(
		fmt.Sprintf("E8: reverse scans (%d keys preloaded, %d-key ranges)", w.Preload, scanLen),
		"variant", "scans/s")

	type scanner interface {
		harness.IndexOps
	}
	run := func(label string, ops scanner, rs harness.ReverseScanner) {
		// Preload.
		stride := w.KeySpace / uint64(w.Preload)
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < w.Preload; i++ {
			if err := ops.Insert((uint64(i)*stride)%w.KeySpace+1, uint64(i)); err != nil {
				fmt.Fprintln(os.Stderr, "indexbench: preload:", err)
				os.Exit(1)
			}
		}
		kg := harness.NewKeyGen(harness.Uniform, w.KeySpace-scanLen, 99)
		start := time.Now()
		n := w.Threads * w.OpsPer
		for i := 0; i < n; i++ {
			from := kg.Next()
			if err := rs.ScanReverse(from, from+scanLen, func(uint64, uint64) bool { return true }); err != nil {
				fmt.Fprintln(os.Stderr, "indexbench: scan:", err)
				os.Exit(1)
			}
		}
		tbl.Add(label, harness.Throughput(float64(n)/time.Since(start).Seconds()))
	}

	{
		s := storeFor(pmwcas.Volatile, flush)
		cl := must(s.CASSkipList())
		f := &harness.CASListFactory{List: cl, Label: "cas"}
		ops := f.NewOps(1)
		run("cas singly-linked + fixup", ops, ops.(harness.ReverseScanner))
	}
	{
		s := storeFor(pmwcas.Persistent, flush)
		l := must(s.SkipList())
		f := &harness.SkipListFactory{List: l, Label: "pmwcas"}
		ops := f.NewOps(1)
		run("pmwcas doubly-linked", ops, ops.(harness.ReverseScanner))
	}
	tbl.Print(os.Stdout)
}

func mixLabel(m harness.Mix) string {
	return fmt.Sprintf("r%d/i%d/u%d/d%d/s%d", m.Reads, m.Inserts, m.Updates, m.Deletes, m.Scans)
}
