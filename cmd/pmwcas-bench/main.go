// Command pmwcas-bench runs the PMwCAS microbenchmarks (experiments
// E1-E4): multi-word CAS throughput, success rate, helping rate, and
// flush counts across contention levels and word counts, for the
// volatile MwCAS, PMwCAS, and the simulated-HTM comparator.
//
// Usage:
//
//	pmwcas-bench [-variant pmwcas|mwcas|htm|all] [-threads n] [-ops n]
//	             [-array words] [-words perOp] [-flushns n] [-sweep]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmwcas/internal/harness"
	"pmwcas/internal/htm"
)

func main() {
	variant := flag.String("variant", "all", "pmwcas, mwcas, htm, or all")
	threads := flag.Int("threads", 4, "worker goroutines")
	ops := flag.Int("ops", 50000, "attempts per thread")
	array := flag.Int("array", 100000, "shared array size in words (contention knob)")
	words := flag.Int("words", 4, "words per MwCAS")
	flushNS := flag.Int("flushns", 0, "simulated CLWB latency in ns")
	spurious := flag.Float64("htm-spurious", 0.002, "HTM spurious abort probability")
	sweep := flag.Bool("sweep", false, "sweep contention levels and word counts")
	flag.Parse()

	variants := []harness.MicroVariant{harness.VariantMwCAS, harness.VariantPMwCAS, harness.VariantHTM}
	if *variant != "all" {
		variants = []harness.MicroVariant{harness.MicroVariant(*variant)}
	}

	run := func(v harness.MicroVariant, arrayWords, wordsPer int) harness.MicroResult {
		r, err := harness.RunMicro(harness.MicroConfig{
			Variant:      v,
			Threads:      *threads,
			OpsPer:       *ops,
			ArrayWords:   arrayWords,
			WordsPerOp:   wordsPer,
			FlushLatency: time.Duration(*flushNS) * time.Nanosecond,
			HTM:          htm.Config{SpuriousAbortProb: *spurious},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmwcas-bench:", err)
			os.Exit(1)
		}
		return r
	}

	if !*sweep {
		tbl := harness.NewTable(
			fmt.Sprintf("MwCAS microbenchmark — %d threads, %d-word ops, %d-word array",
				*threads, *words, *array),
			"variant", "ops/s", "success", "flushes/op", "helps/op")
		for _, v := range variants {
			r := run(v, *array, *words)
			tbl.Add(string(v), harness.Throughput(r.OpsPerSec), r.SuccessRate, r.FlushesPer, r.HelpsPer)
		}
		tbl.Print(os.Stdout)
		return
	}

	// E1/E2: contention sweep.
	tbl := harness.NewTable("E1/E2: contention sweep (success rate)",
		"array words", "mwcas", "pmwcas", "htm", "htm fallbacks")
	for _, a := range []int{8, 64, 1024, 100000} {
		row := []any{a}
		var fallbacks uint64
		for _, v := range []harness.MicroVariant{harness.VariantMwCAS, harness.VariantPMwCAS, harness.VariantHTM} {
			r := run(v, a, *words)
			row = append(row, r.SuccessRate)
			if v == harness.VariantHTM {
				fallbacks = r.HTMStats.Fallbacks
			}
		}
		row = append(row, fallbacks)
		tbl.Add(row...)
	}
	tbl.Print(os.Stdout)

	// E3: word count sweep.
	tbl = harness.NewTable("E3: words per descriptor (ops/s, low contention)",
		"words", "mwcas", "pmwcas", "pmwcas flushes/op")
	for _, w := range []int{1, 2, 4, 8, 16} {
		m := run(harness.VariantMwCAS, *array, w)
		p := run(harness.VariantPMwCAS, *array, w)
		tbl.Add(w, harness.Throughput(m.OpsPerSec), harness.Throughput(p.OpsPerSec), p.FlushesPer)
	}
	tbl.Print(os.Stdout)
}
