// Command pmwcas-loadgen drives a running pmwcas-server with N client
// connections issuing a mixed Get/Put/Delete/Scan workload, and reports
// throughput and latency percentiles.
//
// Keys are drawn with the harness key distributions (uniform, zipf,
// sequential) and rendered as 7-hex-digit strings so they fit the
// store's order-preserving key codec.
//
// Example (matches the repo's acceptance run):
//
//	pmwcas-loadgen -addr :7171 -conns 16 -ops 2000 -dist uniform \
//	               -gets 50 -puts 40 -dels 0 -scans 10
//
// Exits non-zero if any operation fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"pmwcas/internal/harness"
	"pmwcas/internal/metrics"
	"pmwcas/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7171", "server address")
	conns := flag.Int("conns", 16, "client connections (one worker goroutine each)")
	ops := flag.Int("ops", 2000, "operations per connection")
	keys := flag.Uint64("keys", 65536, "key-space size")
	dist := flag.String("dist", "uniform", "key distribution: uniform, zipf, or sequential")
	gets := flag.Int("gets", 50, "percent GET")
	puts := flag.Int("puts", 40, "percent PUT")
	dels := flag.Int("dels", 0, "percent DELETE")
	scans := flag.Int("scans", 10, "percent SCAN")
	scanLimit := flag.Int("scanlimit", 50, "entries per SCAN")
	valSize := flag.Int("valsize", 64, "value size in bytes (use <=7 against a bwtree server)")
	pipeline := flag.Int("pipeline", 1, "requests in flight per connection (1 = synchronous)")
	preload := flag.Int("preload", 0, "keys to PUT sequentially before the timed run")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request I/O timeout")
	seed := flag.Int64("seed", 1, "base RNG seed")
	showStats := flag.Bool("stats", false, "print server STATS after the run")
	jsonOut := flag.String("json", "", "write the run result as JSON (throughput, client percentiles, server METRICS histograms) to this path")
	flag.Parse()

	if *gets+*puts+*dels+*scans != 100 {
		fatalf("op mix must sum to 100 (got gets=%d puts=%d dels=%d scans=%d)", *gets, *puts, *dels, *scans)
	}
	if *keys == 0 || *keys > 1<<28 {
		fatalf("-keys must be in [1, 2^28] (keys are 7 hex digits)")
	}
	if *pipeline < 1 {
		*pipeline = 1
	}
	d, err := parseDist(*dist)
	if err != nil {
		fatalf("%v", err)
	}

	if *preload > 0 {
		if err := doPreload(*addr, *conns, *preload, *valSize, *timeout); err != nil {
			fatalf("preload: %v", err)
		}
	}

	workers := make([]*worker, *conns)
	for i := range workers {
		w := &worker{
			id:        i,
			addr:      *addr,
			ops:       *ops,
			scanLimit: *scanLimit,
			pipeline:  *pipeline,
			timeout:   *timeout,
			val:       makeValue(*valSize, i),
			keygen:    harness.NewKeyGen(d, *keys, *seed+int64(i)),
			mix:       rand.New(rand.NewSource(*seed ^ int64(i)<<32)),
			cut:       [3]int{*gets, *gets + *puts, *gets + *puts + *dels},
		}
		workers[i] = w
	}

	var wg sync.WaitGroup
	start := time.Now()
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	total, errs, notFound, scanned := 0, 0, 0, 0
	for _, w := range workers {
		total += w.done
		errs += w.errs
		notFound += w.notFound
		scanned += w.scanned
		lats = append(lats, w.lats...)
		if w.err != nil {
			fmt.Fprintf(os.Stderr, "pmwcas-loadgen: conn %d: %v\n", w.id, w.err)
		}
	}

	fmt.Printf("pmwcas-loadgen: %d conns x %d ops = %d ops in %v (%s), %d errors\n",
		*conns, *ops, total, elapsed.Round(time.Millisecond),
		harness.Throughput(float64(total)/elapsed.Seconds()), errs)
	fmt.Printf("mix: get %d%% put %d%% del %d%% scan %d%% (limit %d) | keys %d %s | valsize %d | pipeline %d\n",
		*gets, *puts, *dels, *scans, *scanLimit, *keys, d, *valSize, *pipeline)
	fmt.Printf("misses: %d not-found | scanned: %d entries\n", notFound, scanned)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		unit := "per op"
		if *pipeline > 1 {
			unit = fmt.Sprintf("per %d-deep batch", *pipeline)
		}
		fmt.Printf("latency (%s): p50=%v p90=%v p99=%v max=%v\n", unit,
			pct(lats, 50), pct(lats, 90), pct(lats, 99), lats[len(lats)-1])
	}
	if *showStats {
		printServerStats(*addr, *timeout)
	}
	if *jsonOut != "" {
		res := benchResult{
			Config: benchConfig{
				Conns: *conns, Ops: *ops, Keys: *keys, Dist: *dist,
				Gets: *gets, Puts: *puts, Dels: *dels, Scans: *scans,
				ValSize: *valSize, Pipeline: *pipeline, Preload: *preload,
			},
			ElapsedNs: elapsed.Nanoseconds(),
			TotalOps:  total,
			Errors:    errs,
			NotFound:  notFound,
			OpsPerSec: float64(total) / elapsed.Seconds(),
		}
		if len(lats) > 0 {
			res.LatencyNs = &benchLatency{
				P50: pct(lats, 50).Nanoseconds(),
				P90: pct(lats, 90).Nanoseconds(),
				P99: pct(lats, 99).Nanoseconds(),
				Max: lats[len(lats)-1].Nanoseconds(),
			}
		}
		res.Server = fetchServerHistograms(*addr, *timeout)
		if err := writeResult(*jsonOut, &res); err != nil {
			fatalf("write %s: %v", *jsonOut, err)
		}
	}
	if errs > 0 {
		os.Exit(1)
	}
}

// benchResult is the -json output schema: one run, flat enough to diff
// between CI pushes (cmd/benchdiff consumes it).
type benchResult struct {
	Config    benchConfig                    `json:"config"`
	ElapsedNs int64                          `json:"elapsed_ns"`
	TotalOps  int                            `json:"total_ops"`
	Errors    int                            `json:"errors"`
	NotFound  int                            `json:"not_found"`
	OpsPerSec float64                        `json:"ops_per_sec"`
	LatencyNs *benchLatency                  `json:"latency_ns,omitempty"`
	Server    map[string]metrics.HistSummary `json:"server,omitempty"`
}

type benchConfig struct {
	Conns    int    `json:"conns"`
	Ops      int    `json:"ops"`
	Keys     uint64 `json:"keys"`
	Dist     string `json:"dist"`
	Gets     int    `json:"gets"`
	Puts     int    `json:"puts"`
	Dels     int    `json:"dels"`
	Scans    int    `json:"scans"`
	ValSize  int    `json:"valsize"`
	Pipeline int    `json:"pipeline"`
	Preload  int    `json:"preload"`
}

type benchLatency struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// fetchServerHistograms pulls the server's METRICS snapshot and keeps
// the histogram summaries (latency distributions measured server-side,
// free of client scheduling noise). Best-effort: a server without the
// METRICS op just yields no section.
func fetchServerHistograms(addr string, timeout time.Duration) map[string]metrics.HistSummary {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil
	}
	defer c.Close()
	c.Timeout = timeout
	text, err := c.Metrics()
	if err != nil {
		return nil
	}
	sums := metrics.ParseSummaries(text)
	if len(sums) == 0 {
		return nil
	}
	return sums
}

func writeResult(path string, res *benchResult) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// worker is one connection's state; run issues its share of the load.
type worker struct {
	id        int
	addr      string
	ops       int
	scanLimit int
	pipeline  int
	timeout   time.Duration
	val       []byte
	keygen    *harness.KeyGen
	mix       *rand.Rand
	cut       [3]int // cumulative get/put/del percent cuts

	done     int
	errs     int
	notFound int
	scanned  int
	lats     []time.Duration
	err      error
}

func (w *worker) run() {
	c, err := wire.Dial(w.addr)
	if err != nil {
		w.err = err
		w.errs += w.ops
		return
	}
	defer c.Close()
	c.Timeout = w.timeout

	for sent := 0; sent < w.ops; {
		batch := min(w.pipeline, w.ops-sent)
		begin := time.Now()
		for i := 0; i < batch; i++ {
			if err := c.Send(w.nextRequest()); err != nil {
				w.fail(err, w.ops-sent)
				return
			}
		}
		if err := c.Flush(); err != nil {
			w.fail(err, w.ops-sent)
			return
		}
		for i := 0; i < batch; i++ {
			resp, err := c.Recv()
			if err != nil {
				w.fail(err, w.ops-sent)
				return
			}
			sent++
			w.done++
			switch resp.Status {
			case wire.StatusOK:
				w.scanned += len(resp.Entries)
			case wire.StatusNotFound:
				w.notFound++ // an expected outcome, not a failure
			default:
				w.errs++
				if w.err == nil {
					w.err = fmt.Errorf("%s %s", resp.Status, resp.Msg)
				}
			}
		}
		w.lats = append(w.lats, time.Since(begin))
	}
}

// fail records a transport error covering the remaining unanswered ops.
// The first error is kept: it names the cause (e.g. a BUSY rejection),
// later ones are its fallout.
func (w *worker) fail(err error, remaining int) {
	if w.err == nil {
		w.err = err
	}
	w.errs += remaining
}

// nextRequest draws one operation from the mix.
func (w *worker) nextRequest() *wire.Request {
	key := formatKey(w.keygen.Next())
	switch p := w.mix.Intn(100); {
	case p < w.cut[0]:
		return &wire.Request{Op: wire.OpGet, Key: key}
	case p < w.cut[1]:
		return &wire.Request{Op: wire.OpPut, Key: key, Value: w.val}
	case p < w.cut[2]:
		return &wire.Request{Op: wire.OpDelete, Key: key}
	default:
		return &wire.Request{Op: wire.OpScan, Key: key, Limit: uint32(w.scanLimit)}
	}
}

// formatKey renders a harness key as 7 hex digits — within the key
// codec's 7-byte limit and order-preserving for range scans.
func formatKey(k uint64) []byte {
	return fmt.Appendf(nil, "%07x", k)
}

func makeValue(size, worker int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte('a' + (worker+i)%26)
	}
	return v
}

// doPreload seeds keys 1..n round-robin across conns connections so the
// timed run hits a populated store.
func doPreload(addr string, conns, n, valSize int, timeout time.Duration) error {
	var wg sync.WaitGroup
	errc := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := wire.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			cl.Timeout = timeout
			val := makeValue(valSize, c)
			for k := c + 1; k <= n; k += conns {
				if err := cl.Put(formatKey(uint64(k)), val); err != nil {
					errc <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	return <-errc
}

func printServerStats(addr string, timeout time.Duration) {
	c, err := wire.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmwcas-loadgen: stats: %v\n", err)
		return
	}
	defer c.Close()
	c.Timeout = timeout
	st, err := c.Stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmwcas-loadgen: stats: %v\n", err)
		return
	}
	fmt.Print("--- server stats ---\n", st)
}

func parseDist(s string) (harness.Distribution, error) {
	switch s {
	case "uniform":
		return harness.Uniform, nil
	case "zipf":
		return harness.Zipf, nil
	case "sequential":
		return harness.Sequential, nil
	}
	return 0, fmt.Errorf("unknown -dist %q (want uniform, zipf, or sequential)", s)
}

// pct returns the p-th percentile of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pmwcas-loadgen: "+format+"\n", args...)
	os.Exit(1)
}
