package pmwcas

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pmwcas/internal/alloc"
	"pmwcas/internal/blobkv"
	"pmwcas/internal/bwtree"
	"pmwcas/internal/core"
	"pmwcas/internal/hashtable"
	"pmwcas/internal/nvram"
	"pmwcas/internal/pqueue"
	"pmwcas/internal/skiplist"
)

// Config sizes a Store. The zero value is a usable default: a 64 MiB
// persistent single-shard store with general-purpose size classes.
type Config struct {
	// Size is the simulated NVRAM capacity in bytes (default 64 MiB),
	// shared evenly by all shards. Layout is derived deterministically
	// from this Config, so reopening a device (or snapshot) requires the
	// same Config.
	Size uint64
	// Mode selects Persistent (default) or Volatile.
	Mode Mode
	// Shards partitions the store into independent engines (default 1),
	// each owning its own slice of the device: descriptor pool, allocator
	// arena, epoch manager, root line, and index regions. Shards never
	// share mutable state, so operations on different shards contend on
	// nothing — the shard-per-core layout of ROADMAP item 1. Keys are
	// placed by ShardForKey; all capacity knobs below are per shard.
	Shards int
	// Descriptors is each shard's PMwCAS pool capacity (default 1024).
	Descriptors int
	// WordsPerDescriptor is each descriptor's capacity (default: what the
	// skip list needs, 3+MaxHeight).
	WordsPerDescriptor int
	// MaxHandles bounds concurrent allocator handles per shard
	// (default 64).
	MaxHandles int
	// Classes overrides each shard's allocator size classes. The default
	// covers skip list nodes, Bw-tree deltas, and Bw-tree pages.
	Classes []SizeClass
	// BwTreeMappingSlots sizes each shard's Bw-tree mapping table
	// (default 1<<16 LPIDs). Only consumed when BwTree is opened.
	BwTreeMappingSlots uint64
	// HashDirSlots sizes each shard's hash table directory (default 1<<12
	// bucket pointers; must be a power of two). The directory caps
	// fan-out, not capacity — deeper buckets are reached through the
	// bucket tree. Only consumed when HashTable is opened.
	HashDirSlots uint64
	// FlushLatency, if set, charges each cache-line write-back this much
	// simulated time (models NVRAM write cost in benchmarks).
	FlushLatency time.Duration
	// EvictEvery, if > 0, persists roughly one random line per that many
	// stores (models opportunistic cache eviction).
	EvictEvery int
	// EvictSeed, if non-zero, seeds the eviction RNG so runs that enable
	// EvictEvery are reproducible (crash sweeps pin findings to a seed).
	EvictSeed int64
	// YieldEvery, if > 0, yields the processor every that many device
	// accesses so logical threads interleave even on few-core hosts
	// (benchmarking knob; see nvram.WithYield).
	YieldEvery int
	// RecoveryHook, if set, is called after each shard finishes recovery
	// (OpenDevice, OpenFile, Recover), in shard order. Crash sweeps use it
	// to capture and perturb the device between shard recoveries; it does
	// not participate in layout and need not match across reopenings.
	RecoveryHook func(shard int)
}

// fill applies defaults and validates that the fixed regions fit the
// per-shard budget. It reports configurations that cannot possibly be
// laid out with an error naming the oversized region, instead of letting
// a later layout carve panic (or an allocator with clamped classes
// limp along) obscure which knob was wrong.
func (c *Config) fill() error {
	if c.Size == 0 {
		c.Size = 64 << 20
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 0 {
		return fmt.Errorf("pmwcas: Shards must be positive, got %d", c.Shards)
	}
	if c.Descriptors == 0 {
		c.Descriptors = 1024
	}
	if c.WordsPerDescriptor == 0 {
		c.WordsPerDescriptor = skiplist.MinDescriptorWords
	}
	if c.MaxHandles == 0 {
		c.MaxHandles = 64
	}
	if c.BwTreeMappingSlots == 0 {
		c.BwTreeMappingSlots = 1 << 16
	}
	if c.HashDirSlots == 0 {
		c.HashDirSlots = 1 << 12
	}
	shardBudget := c.Size / uint64(c.Shards)
	poolBytes := core.PoolSize(c.Descriptors, c.WordsPerDescriptor)
	mapBytes := c.BwTreeMappingSlots * nvram.WordSize
	dirBytes := c.HashDirSlots * nvram.WordSize
	// The remaining fixed regions (roots, Bw-tree meta, blob staging, hash
	// anchor) plus bitmap and line-rounding slack.
	const slack = 64 << 10
	fixed := poolBytes + mapBytes + dirBytes + slack
	if fixed >= shardBudget {
		biggest, n := "descriptor pool", poolBytes
		if mapBytes > n {
			biggest, n = "Bw-tree mapping table", mapBytes
		}
		if dirBytes > n {
			biggest, n = "hash directory", dirBytes
		}
		return fmt.Errorf(
			"pmwcas: fixed regions need %d bytes but each shard has %d (Size %d / Shards %d); largest is the %s at %d bytes",
			fixed, shardBudget, c.Size, c.Shards, biggest, n)
	}
	if c.Classes == nil {
		// Derive classes from whatever is left after the fixed regions,
		// with ~10% slack for bitmaps and rounding: five classes sharing
		// the per-shard data budget evenly.
		per := (shardBudget - fixed) * 9 / 10 / 5
		c.Classes = []SizeClass{
			{BlockSize: 64, Count: max64(per/64, 64)},
			{BlockSize: 128, Count: max64(per/128, 32)},
			{BlockSize: 256, Count: max64(per/256, 16)},
			{BlockSize: 1024, Count: max64(per/1024, 16)},
			{BlockSize: 4096, Count: max64(per/4096, 8)},
		}
	}
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// storeShard is one shard's private slice of the store: its own regions,
// descriptor pool (and thus epoch manager), and allocator arena. Shards
// share only the device; every mutable word belongs to exactly one.
type storeShard struct {
	pool  *core.Pool
	alloc *alloc.Allocator

	rootsRegion   nvram.Region // skip list anchors + application roots
	mapRegion     nvram.Region // Bw-tree mapping table
	metaRegion    nvram.Region // Bw-tree meta line
	blobRegion    nvram.Region // blob KV staging slots
	hashRegion    nvram.Region // hash table anchor line
	hashDirRegion nvram.Region // hash table directory
	poolRegion    nvram.Region
	allocRegion   nvram.Region

	// The hash table is a per-shard singleton; caching it keeps one set
	// of split/reclaim counters per shard for Stats.
	htMu    sync.Mutex
	ht      *hashtable.Table
	htSlots int
}

// Store assembles the full system: simulated NVRAM device and, per
// shard, a persistent allocator, PMwCAS descriptor pool, a root
// directory for anchoring application structures, and regions for the
// indexes. Shard region groups are carved back to back in shard order,
// so a single-shard layout is byte-identical to the pre-sharding one.
// The whole layout is a pure function of Config, which is what makes
// recovery possible: after a crash, opening the same device with the
// same Config finds every structure where it was.
type Store struct {
	cfg    Config
	dev    *nvram.Device
	shards []*storeShard
}

// Create builds a fresh store on a new simulated device.
func Create(cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	opts := []nvram.Option{}
	if cfg.FlushLatency > 0 {
		opts = append(opts, nvram.WithFlushLatency(cfg.FlushLatency))
	}
	if cfg.EvictEvery > 0 {
		opts = append(opts, nvram.WithEviction(cfg.EvictEvery))
	}
	if cfg.EvictSeed != 0 {
		opts = append(opts, nvram.WithEvictionSeed(cfg.EvictSeed))
	}
	if cfg.YieldEvery > 0 {
		opts = append(opts, nvram.WithYield(cfg.YieldEvery))
	}
	return assemble(nvram.New(cfg.Size, opts...), cfg, false)
}

// OpenDevice wraps an existing device (for example, one that just
// crashed, or was restored from a snapshot) and, in Persistent mode,
// runs allocator and PMwCAS recovery shard by shard.
func OpenDevice(dev *nvram.Device, cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if dev.Size() < cfg.Size {
		return nil, fmt.Errorf("pmwcas: device holds %d bytes, config requires %d", dev.Size(), cfg.Size)
	}
	return assemble(dev, cfg, cfg.Mode == Persistent)
}

// OpenFile restores a store from a snapshot file written by Checkpoint
// and runs recovery. The Config must match the one the snapshot was
// created with.
func OpenFile(path string, cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	opts := []nvram.Option{}
	if cfg.FlushLatency > 0 {
		opts = append(opts, nvram.WithFlushLatency(cfg.FlushLatency))
	}
	dev := nvram.New(cfg.Size, opts...)
	if err := dev.LoadFile(path); err != nil {
		return nil, err
	}
	return assemble(dev, cfg, true)
}

// carveShard reserves one shard's region group. The order within a group
// is fixed forever: hash table regions come last so their addition left
// every earlier region — and thus every pre-existing durable image —
// where it was.
func carveShard(l *nvram.Layout, cfg *Config) *storeShard {
	sh := &storeShard{}
	sh.poolRegion = l.Carve(core.PoolSize(cfg.Descriptors, cfg.WordsPerDescriptor))
	sh.allocRegion = l.Carve(alloc.MetaSize(cfg.Classes, cfg.MaxHandles))
	sh.rootsRegion = l.Carve(nvram.LineBytes * 4) // 32 root words
	sh.mapRegion = l.Carve(cfg.BwTreeMappingSlots * nvram.WordSize)
	sh.metaRegion = l.Carve(nvram.LineBytes)
	sh.blobRegion = l.Carve(blobkv.StagingWords(cfg.MaxHandles) * nvram.WordSize)
	sh.hashRegion = l.Carve(nvram.LineBytes)
	sh.hashDirRegion = l.Carve(cfg.HashDirSlots * nvram.WordSize)
	return sh
}

// buildShard constructs a shard's allocator and pool over its regions
// and, when recovering, replays that shard's deliveries and descriptors.
func buildShard(dev *nvram.Device, cfg *Config, sh *storeShard, recover bool) (RecoveryStats, error) {
	var rst RecoveryStats
	var err error
	sh.alloc, err = alloc.New(dev, sh.allocRegion, cfg.Classes, cfg.MaxHandles)
	if err != nil {
		return rst, fmt.Errorf("allocator: %w", err)
	}
	if recover {
		sh.alloc.Recover()
	}
	sh.pool, err = core.NewPool(core.Config{
		Device:             dev,
		Region:             sh.poolRegion,
		DescriptorCount:    cfg.Descriptors,
		WordsPerDescriptor: cfg.WordsPerDescriptor,
		Mode:               cfg.Mode,
		Allocator:          sh.alloc,
	})
	if err != nil {
		return rst, fmt.Errorf("pool: %w", err)
	}
	// Finalize callbacks must exist before recovery replays descriptors.
	bwtree.RegisterRecoveryCallbacks(sh.pool, sh.alloc)
	if recover {
		if rst, err = sh.pool.Recover(); err != nil {
			return rst, fmt.Errorf("recovery: %w", err)
		}
	}
	return rst, nil
}

func assemble(dev *nvram.Device, cfg Config, recover bool) (*Store, error) {
	s := &Store{cfg: cfg, dev: dev}
	l := nvram.NewLayout(dev)
	// Carve every shard's regions before recovering any: the layout is a
	// pure function of Config regardless of how far a recovery got.
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, carveShard(l, &cfg))
	}
	for i, sh := range s.shards {
		if _, err := buildShard(dev, &cfg, sh, recover); err != nil {
			return nil, fmt.Errorf("pmwcas: shard %d: %w", i, err)
		}
		if recover && cfg.RecoveryHook != nil {
			cfg.RecoveryHook(i)
		}
	}
	return s, nil
}

// Device exposes the simulated NVRAM device (stats, crash injection).
func (s *Store) Device() *Device { return s.dev }

// ShardCount returns the number of shards the store was configured with.
func (s *Store) ShardCount() int { return len(s.shards) }

// ShardForKey places an index key on a shard. Placement uses the high
// bits of the same mix the hash table drives its directory with from the
// low bits, so a shard's hash directory sees the full low-bit spread —
// sharding never biases any shard's bucket classes.
func (s *Store) ShardForKey(key uint64) int {
	if len(s.shards) == 1 {
		return 0
	}
	return int((hashtable.Mix64(key) >> 32) % uint64(len(s.shards)))
}

// Shard is one shard's view of the store: the same index and handle
// accessors as the Store itself, scoped to that shard's pool, allocator,
// and regions. Store-level accessors are shorthand for Shard(0).
type Shard struct {
	s *Store
	i int
}

// Shard returns shard i's view.
func (s *Store) Shard(i int) *Shard {
	if i < 0 || i >= len(s.shards) {
		panic(fmt.Sprintf("pmwcas: shard %d out of range [0,%d)", i, len(s.shards)))
	}
	return &Shard{s: s, i: i}
}

// Index returns which shard this view is scoped to.
func (sh *Shard) Index() int { return sh.i }

// Epochs exposes this shard's epoch manager.
func (sh *Shard) Epochs() *EpochManager { return sh.state().pool.Epochs() }

// PMwCASHandle returns a per-goroutine handle for issuing raw PMwCAS
// operations and reads against this shard.
func (sh *Shard) PMwCASHandle() *Handle { return sh.state().pool.NewHandle() }

func (sh *Shard) state() *storeShard { return sh.s.shards[sh.i] }

// Epochs exposes shard 0's epoch manager. With multiple shards each has
// its own; use Shard(i).Epochs() for the others.
func (s *Store) Epochs() *EpochManager { return s.shards[0].pool.Epochs() }

// PoolStats returns the PMwCAS pool activity counters summed across all
// shards (use Shard(i).PMwCASHandle's pool for a single shard's view).
func (s *Store) PoolStats() PoolStats {
	var st PoolStats
	for _, sh := range s.shards {
		p := sh.pool.Stats()
		st.Allocated += p.Allocated
		st.Succeeded += p.Succeeded
		st.Failed += p.Failed
		st.Discarded += p.Discarded
		st.Helps += p.Helps
		st.Reads += p.Reads
	}
	return st
}

// StoreStats is a cross-layer observability snapshot: PMwCAS descriptor
// activity, epoch-reclamation progress, allocator occupancy, and device
// flush counts in one read, summed across shards. It is what the
// server's STATS command reports; all counters are cumulative since
// store creation (hash structure counters: since the table was opened).
type StoreStats struct {
	// Shards is the number of independent engines the totals below sum.
	Shards int
	// Pool counts PMwCAS descriptor activity (allocations, helps,
	// successes/failures, reads that helped) across all shards.
	Pool PoolStats
	// Epoch counts epoch clock advances and deferred/freed garbage
	// across all shards. Guards is a gauge, also summed.
	Epoch EpochStats
	// Descriptor pool occupancy across all shards.
	DescriptorsFree int
	DescriptorsCap  int
	// Data-heap occupancy (allocated vs total capacity) across all shards.
	AllocBlocks, AllocBytes       uint64
	AllocCapBlocks, AllocCapBytes uint64
	// Hash table structure activity across all shards (zero until a
	// shard's HashTable is opened): splits seal one interior bucket each,
	// reclaims free one, so SealedBuckets = Splits - Reclaims is the net
	// interior growth this session. The durable count is in
	// DurableState.HashCheck.
	HashSplits, HashDoublings, HashReclaims uint64
	HashSealedBuckets                       uint64
	// Device holds the NVRAM operation counters (loads, stores, flushes,
	// fences, crashes) for the one shared device.
	Device DeviceStats
}

// Stats gathers a StoreStats snapshot across all shards. Counters are
// read individually without a global lock, so a snapshot taken under
// load is approximate — internally consistent enough for monitoring,
// not a linearizable cut.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Shards: len(s.shards),
		Pool:   s.PoolStats(),
		Device: s.dev.Stats(),
	}
	for _, sh := range s.shards {
		e := sh.pool.Epochs().Stats()
		st.Epoch.Advances += e.Advances
		st.Epoch.Deferred += e.Deferred
		st.Epoch.Freed += e.Freed
		st.Epoch.Pending += e.Pending
		st.Epoch.Guards += e.Guards
		st.DescriptorsFree += sh.pool.FreeDescriptors()
		st.DescriptorsCap += sh.pool.Capacity()
		blocks, bytes := sh.alloc.InUse()
		st.AllocBlocks += blocks
		st.AllocBytes += bytes
		blocks, bytes = sh.alloc.Capacity()
		st.AllocCapBlocks += blocks
		st.AllocCapBytes += bytes
		sh.htMu.Lock()
		t := sh.ht
		sh.htMu.Unlock()
		if t != nil {
			hs := t.Stats()
			st.HashSplits += hs.Splits
			st.HashDoublings += hs.Doublings
			st.HashReclaims += hs.Reclaims
		}
	}
	st.HashSealedBuckets = st.HashSplits - st.HashReclaims
	return st
}

// Close quiesces the store: every shard's epoch clock is advanced and
// every deferred reclamation runs, so all recycled descriptors and
// blocks are durably finalized. Every handle must be idle — no operation
// in flight, no guard held (Close panics otherwise, exactly like
// EpochManager.Drain). The store must not be used after Close; for
// persistent stores, follow with Checkpoint to capture the quiesced
// image.
func (s *Store) Close() error {
	for _, sh := range s.shards {
		sh.pool.Epochs().Drain()
	}
	return nil
}

// Mode returns the store's persistence mode.
func (s *Store) Mode() Mode { return s.cfg.Mode }

// PMwCASHandle returns a per-goroutine handle for issuing raw PMwCAS
// operations and reads against shard 0.
func (s *Store) PMwCASHandle() *Handle { return s.shards[0].pool.NewHandle() }

// RegisterCallback installs a finalize callback (paper §5.2) on every
// shard's pool. IDs 1-15 are reserved by the library's own structures;
// applications should use 16 and above.
func (s *Store) RegisterCallback(id uint16, fn FinalizeFunc) error {
	for i, sh := range s.shards {
		if err := sh.pool.RegisterCallback(id, fn); err != nil {
			return fmt.Errorf("pmwcas: shard %d: %w", i, err)
		}
	}
	return nil
}

// RootWords is the number of application root slots in each shard.
const RootWords = 16

// RootWord returns the offset of application root slot i on shard 0;
// Shard(i).RootWord addresses the other shards. Roots are durable words
// at fixed offsets — the anchors from which persistent structures are
// found again after a restart. Slots are application-owned; slot
// assignments must be stable across versions of the application. (The
// first half of the root region is reserved for the library's own
// indexes.)
func (s *Store) RootWord(i int) Offset { return s.Shard(0).RootWord(i) }

// RootWord returns the offset of this shard's application root slot i.
func (sh *Shard) RootWord(i int) Offset {
	if i < 0 || i >= RootWords {
		panic(fmt.Sprintf("pmwcas: root slot %d out of range [0,%d)", i, RootWords))
	}
	return sh.state().rootsRegion.Base + nvram.LineBytes*2 + nvram.Offset(i)*nvram.WordSize
}

// Alloc reserves a block of at least size bytes on shard 0 and durably
// delivers its offset into the target word (paper §5.2); see RootWord
// for stable targets. Most callers want ReserveEntry on a descriptor
// instead; this direct form exists for application root structures.
func (s *Store) Alloc(size uint64, target Offset) (Offset, error) {
	return s.Shard(0).Alloc(size, target)
}

// Alloc reserves a block on this shard's arena; see Store.Alloc.
func (sh *Shard) Alloc(size uint64, target Offset) (Offset, error) {
	return sh.state().alloc.NewHandle().Alloc(size, target)
}

// Free releases a block previously delivered by shard 0's Alloc or a
// descriptor reservation. The caller must guarantee no thread can still
// reach it (use Epochs().Defer for lock-free structures).
func (s *Store) Free(block Offset) error { return s.Shard(0).Free(block) }

// Free releases a block on this shard's arena; see Store.Free.
func (sh *Shard) Free(block Offset) error { return sh.state().alloc.Free(block) }

// MemoryInUse reports allocated (blocks, bytes) across all shards' data
// heaps.
func (s *Store) MemoryInUse() (blocks, bytes uint64) {
	for _, sh := range s.shards {
		b, y := sh.alloc.InUse()
		blocks += b
		bytes += y
	}
	return blocks, bytes
}

// SkipList opens shard 0's skip list; see Shard.SkipList.
func (s *Store) SkipList() (*SkipList, error) { return s.Shard(0).SkipList() }

// SkipList opens this shard's skip list, creating it on first use. The
// list is a singleton per shard (anchored at fixed roots).
func (sh *Shard) SkipList() (*SkipList, error) {
	st := sh.state()
	return skiplist.New(skiplist.Config{
		Pool:      st.pool,
		Allocator: st.alloc,
		Roots:     nvram.Region{Base: st.rootsRegion.Base, Len: nvram.LineBytes},
	})
}

// CASSkipList creates a fresh volatile baseline skip list sharing the
// store's device and shard 0's allocator (for benchmarking against).
func (s *Store) CASSkipList() (*CASSkipList, error) {
	if s.cfg.Mode != Volatile {
		return nil, errors.New("pmwcas: the CAS baseline skip list requires a Volatile store")
	}
	return skiplist.NewCAS(s.dev, s.shards[0].alloc, s.shards[0].pool.Epochs())
}

// BwTreeOptions tunes the store's Bw-tree.
type BwTreeOptions struct {
	// SMO selects the structure-modification protocol (default SMOPMwCAS).
	SMO SMOMode
	// LeafCapacity / InnerCapacity bound page sizes (default 64).
	LeafCapacity  int
	InnerCapacity int
	// ConsolidateAfter is the chain length that triggers consolidation
	// (default 8).
	ConsolidateAfter int
	// MergeBelow, if > 0, merges leaves that shrink under it (SMOPMwCAS
	// only).
	MergeBelow int
}

// Queue opens shard 0's persistent FIFO queue; see Shard.Queue.
func (s *Store) Queue() (*Queue, error) { return s.Shard(0).Queue() }

// Queue opens this shard's persistent lock-free FIFO queue, creating it
// on first use. Singleton per shard (fixed anchor words).
func (sh *Shard) Queue() (*Queue, error) {
	st := sh.state()
	return pqueue.New(pqueue.Config{
		Pool:      st.pool,
		Allocator: st.alloc,
		Roots:     nvram.Region{Base: st.rootsRegion.Base + nvram.LineBytes, Len: nvram.LineBytes},
	})
}

// BlobKV opens shard 0's blob KV layer; see Shard.BlobKV.
func (s *Store) BlobKV() (*BlobKV, error) { return s.Shard(0).BlobKV() }

// BlobKV opens this shard's byte-string key-value layer over its skip
// list: short string keys, arbitrary-length values in out-of-line
// records, crash-atomic updates. Singleton per shard.
func (sh *Shard) BlobKV() (*BlobKV, error) {
	list, err := sh.SkipList()
	if err != nil {
		return nil, err
	}
	st := sh.state()
	// Each blobkv handle consumes a skip list and an allocator handle, so
	// only a quarter of the shard's handle budget is exposed here.
	n := sh.s.cfg.MaxHandles / 4
	if n < 1 {
		n = 1
	}
	return blobkv.Open(blobkv.Config{
		List:       list,
		Allocator:  st.alloc,
		Device:     sh.s.dev,
		Staging:    st.blobRegion,
		MaxHandles: n,
	})
}

// BwTree opens shard 0's Bw-tree; see Shard.BwTree.
func (s *Store) BwTree(opts BwTreeOptions) (*BwTree, error) { return s.Shard(0).BwTree(opts) }

// BwTree opens this shard's Bw-tree, creating it on first use. The tree
// is a singleton per shard (fixed mapping table region).
func (sh *Shard) BwTree(opts BwTreeOptions) (*BwTree, error) {
	st := sh.state()
	return bwtree.New(bwtree.Config{
		Pool:             st.pool,
		Allocator:        st.alloc,
		Mapping:          st.mapRegion,
		Meta:             st.metaRegion,
		SMO:              opts.SMO,
		LeafCapacity:     opts.LeafCapacity,
		InnerCapacity:    opts.InnerCapacity,
		ConsolidateAfter: opts.ConsolidateAfter,
		MergeBelow:       opts.MergeBelow,
	})
}

// HashTableOptions tunes the store's hash table.
type HashTableOptions struct {
	// SlotsPerBucket is the fixed bucket capacity (default
	// hashtable.DefaultSlotsPerBucket, a four-line bucket). An existing
	// table's durable geometry must match.
	SlotsPerBucket int
}

// HashTable opens shard 0's hash table; see Shard.HashTable.
func (s *Store) HashTable(opts HashTableOptions) (*HashTable, error) {
	return s.Shard(0).HashTable(opts)
}

// HashTable opens this shard's persistent lock-free hash table — the
// point-lookup index — creating it on first use. Singleton per shard
// (fixed anchor line and directory region); repeated opens with the same
// geometry return the same table, so its split/reclaim counters stay in
// one place for Stats.
func (sh *Shard) HashTable(opts HashTableOptions) (*HashTable, error) {
	st := sh.state()
	slots := opts.SlotsPerBucket
	if slots == 0 {
		slots = hashtable.DefaultSlotsPerBucket
	}
	st.htMu.Lock()
	defer st.htMu.Unlock()
	if st.ht != nil && st.htSlots == slots {
		return st.ht, nil
	}
	t, err := hashtable.New(hashtable.Config{
		Pool:           st.pool,
		Allocator:      st.alloc,
		Roots:          st.hashRegion,
		Dir:            st.hashDirRegion,
		SlotsPerBucket: slots,
	})
	if err != nil {
		return nil, err
	}
	st.ht, st.htSlots = t, slots
	return t, nil
}

// Crash simulates a power failure: every cache line that was not written
// back is lost. The caller must guarantee quiescence (no in-flight
// operations), exactly as a real power failure stops all CPUs. Follow
// with Recover (or reopen via OpenDevice) before using the store again.
func (s *Store) Crash() error {
	if s.cfg.Mode != Persistent {
		return errors.New("pmwcas: Crash on a volatile store loses everything by definition")
	}
	s.dev.Crash()
	return nil
}

// Recover reruns allocator and PMwCAS recovery on this store after a
// Crash, shard by shard in shard order (Config.RecoveryHook fires after
// each). Application finalize callbacks must already be registered.
// Equivalent to (and interchangeable with) reopening via OpenDevice.
func (s *Store) Recover() (RecoveryStats, error) {
	if s.cfg.Mode != Persistent {
		return RecoveryStats{}, errors.New("pmwcas: Recover on a volatile store")
	}
	var total RecoveryStats
	// Rebuild every shard's volatile state and replay its deliveries and
	// descriptors into fresh substrates; nothing is swapped in until every
	// shard has recovered, so a failed recovery leaves the store as it was.
	fresh := make([]*storeShard, len(s.shards))
	for i, old := range s.shards {
		sh := &storeShard{
			rootsRegion: old.rootsRegion, mapRegion: old.mapRegion,
			metaRegion: old.metaRegion, blobRegion: old.blobRegion,
			hashRegion: old.hashRegion, hashDirRegion: old.hashDirRegion,
			poolRegion: old.poolRegion, allocRegion: old.allocRegion,
		}
		rst, err := buildShard(s.dev, &s.cfg, sh, true)
		if err != nil {
			return total, fmt.Errorf("pmwcas: shard %d: %w", i, err)
		}
		total.Scanned += rst.Scanned
		total.RolledForward += rst.RolledForward
		total.RolledBack += rst.RolledBack
		total.Reclaimed += rst.Reclaimed
		total.WordsRepaired += rst.WordsRepaired
		total.CorruptCounts += rst.CorruptCounts
		fresh[i] = sh
		if s.cfg.RecoveryHook != nil {
			s.cfg.RecoveryHook(i)
		}
	}
	// Swap in the recovered substrates, then poison the old ones. Handles,
	// guards, and index objects minted before the crash still reference the
	// old pools and allocators; letting them operate would silently corrupt
	// the recovered state (stale free lists, stale epoch clock, descriptors
	// the new pool believes are Free). Poisoning turns any such use into an
	// immediate panic naming the recovery that invalidated it.
	old := s.shards
	s.shards = fresh
	for _, sh := range old {
		sh.pool.Poison("Store.Recover replaced this pool; re-mint handles from the store")
		sh.alloc.Poison("Store.Recover replaced this allocator; re-mint handles from the store")
	}
	return total, nil
}

// Checkpoint writes the durable image to a file. The snapshot is
// crash-consistent: restoring it with OpenFile is equivalent to a power
// failure at the moment of the checkpoint, repaired by recovery.
func (s *Store) Checkpoint(path string) error { return s.dev.SaveFile(path) }

// CheckOptions tunes Store.CheckInvariants.
type CheckOptions struct {
	// Blob additionally validates skip list values as blob-KV records and
	// scans the blob staging slots. Set it whenever the store's skip list
	// is used through BlobKV — without it the list's values are opaque
	// integers and staged blob records would read as allocator leaks.
	Blob bool
}

// DurableState is the logical content CheckInvariants extracted from the
// durable image — the ground truth a durable-linearizability oracle
// compares against. With multiple shards the slices hold every shard's
// entries, concatenated in shard order.
type DurableState struct {
	SkipList []SkipListEntry
	BwTree   []BwTreeEntry
	Hash     []HashEntry       // unspecified order
	Queue    []uint64          // FIFO order within each shard
	Blobs    map[string][]byte // only populated with CheckOptions.Blob
	// HashCheck summarizes the hash tables' structure across shards
	// (bucket counts, sealed interior buckets awaiting reclaim,
	// tombstoned edges).
	HashCheck hashtable.CheckStats
}

// CheckInvariants audits the whole store — every shard — against its
// structural invariants. It must run on a quiescent, freshly recovered
// store (right after OpenDevice/OpenFile/Recover, before any new
// operation): it reads the raw image, so concurrent mutators would race
// it, and it asserts the post-recovery ground state of the descriptor
// pools.
//
// Layers checked per shard, in order: the descriptor pool (every
// descriptor durably Free, count zero, on the free list), each index's
// structural invariants (see skiplist.Check, bwtree.Check, pqueue.Check,
// blobkv.Check), and finally the shard's allocator bitmap against the
// union of every block its indexes reach — a block allocated but
// unreachable is a leak, a block reachable but not allocated is
// dangling. Any shard's failure fails the whole audit, with the error
// naming the shard.
func (s *Store) CheckInvariants(opt CheckOptions) (*DurableState, error) {
	st := &DurableState{}
	for i, sh := range s.shards {
		if err := s.checkShard(i, sh, opt, st); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return st, nil
}

func (s *Store) checkShard(i int, sh *storeShard, opt CheckOptions, st *DurableState) error {
	if err := sh.pool.CheckRecovered(); err != nil {
		return err
	}
	var reachable []Offset

	skipRoots := nvram.Region{Base: sh.rootsRegion.Base, Len: nvram.LineBytes}
	blocks, entries, err := skiplist.Check(s.dev, skipRoots)
	if err != nil {
		return err
	}
	reachable = append(reachable, blocks...)
	st.SkipList = append(st.SkipList, entries...)

	qRoots := nvram.Region{Base: sh.rootsRegion.Base + nvram.LineBytes, Len: nvram.LineBytes}
	blocks, values, err := pqueue.Check(s.dev, qRoots)
	if err != nil {
		return err
	}
	reachable = append(reachable, blocks...)
	st.Queue = append(st.Queue, values...)

	blocks, tentries, err := bwtree.Check(s.dev, sh.mapRegion, sh.metaRegion)
	if err != nil {
		return err
	}
	reachable = append(reachable, blocks...)
	st.BwTree = append(st.BwTree, tentries...)

	blocks, hentries, hstats, err := hashtable.Check(s.dev, sh.hashRegion, sh.hashDirRegion)
	if err != nil {
		return err
	}
	reachable = append(reachable, blocks...)
	st.Hash = append(st.Hash, hentries...)
	st.HashCheck.Buckets += hstats.Buckets
	st.HashCheck.Live += hstats.Live
	st.HashCheck.Sealed += hstats.Sealed
	st.HashCheck.SeveredEdges += hstats.SeveredEdges

	if opt.Blob {
		n := s.cfg.MaxHandles / 4
		if n < 1 {
			n = 1
		}
		// Blob records live on the same shard as their skip list entries,
		// so this shard's slice of st.SkipList is exactly `entries`.
		blocks, blobs, err := blobkv.Check(s.dev, sh.alloc, sh.blobRegion, n, entries)
		if err != nil {
			return err
		}
		reachable = append(reachable, blocks...)
		if st.Blobs == nil {
			st.Blobs = make(map[string][]byte)
		}
		for k, v := range blobs {
			st.Blobs[k] = v
		}
	}

	return sh.alloc.CheckInUse(reachable)
}
