package pmwcas

import (
	"errors"
	"fmt"
	"time"

	"pmwcas/internal/alloc"
	"pmwcas/internal/blobkv"
	"pmwcas/internal/bwtree"
	"pmwcas/internal/core"
	"pmwcas/internal/hashtable"
	"pmwcas/internal/nvram"
	"pmwcas/internal/pqueue"
	"pmwcas/internal/skiplist"
)

// Config sizes a Store. The zero value is a usable default: a 64 MiB
// persistent store with general-purpose size classes.
type Config struct {
	// Size is the simulated NVRAM capacity in bytes (default 64 MiB).
	// Layout is derived deterministically from this Config, so reopening
	// a device (or snapshot) requires the same Config.
	Size uint64
	// Mode selects Persistent (default) or Volatile.
	Mode Mode
	// Descriptors is the PMwCAS pool capacity (default 1024).
	Descriptors int
	// WordsPerDescriptor is each descriptor's capacity (default: what the
	// skip list needs, 3+MaxHeight).
	WordsPerDescriptor int
	// MaxHandles bounds concurrent allocator handles (default 64).
	MaxHandles int
	// Classes overrides the allocator size classes. The default covers
	// skip list nodes, Bw-tree deltas, and Bw-tree pages.
	Classes []SizeClass
	// BwTreeMappingSlots sizes the Bw-tree mapping table (default 1<<16
	// LPIDs). Only consumed when BwTree is opened.
	BwTreeMappingSlots uint64
	// HashDirSlots sizes the hash table directory (default 1<<12 bucket
	// pointers; must be a power of two). The directory caps fan-out, not
	// capacity — deeper buckets are reached through the bucket tree. Only
	// consumed when HashTable is opened.
	HashDirSlots uint64
	// FlushLatency, if set, charges each cache-line write-back this much
	// simulated time (models NVRAM write cost in benchmarks).
	FlushLatency time.Duration
	// EvictEvery, if > 0, persists roughly one random line per that many
	// stores (models opportunistic cache eviction).
	EvictEvery int
	// EvictSeed, if non-zero, seeds the eviction RNG so runs that enable
	// EvictEvery are reproducible (crash sweeps pin findings to a seed).
	EvictSeed int64
	// YieldEvery, if > 0, yields the processor every that many device
	// accesses so logical threads interleave even on few-core hosts
	// (benchmarking knob; see nvram.WithYield).
	YieldEvery int
}

func (c *Config) fill() {
	if c.Size == 0 {
		c.Size = 64 << 20
	}
	if c.Descriptors == 0 {
		c.Descriptors = 1024
	}
	if c.WordsPerDescriptor == 0 {
		c.WordsPerDescriptor = skiplist.MinDescriptorWords
	}
	if c.MaxHandles == 0 {
		c.MaxHandles = 64
	}
	if c.BwTreeMappingSlots == 0 {
		c.BwTreeMappingSlots = 1 << 16
	}
	if c.HashDirSlots == 0 {
		c.HashDirSlots = 1 << 12
	}
	if c.Classes == nil {
		// Derive classes from whatever is left after the fixed regions,
		// with ~10% slack for bitmaps and rounding: five classes sharing
		// the data budget evenly.
		fixed := core.PoolSize(c.Descriptors, c.WordsPerDescriptor) +
			(c.BwTreeMappingSlots+c.HashDirSlots)*nvram.WordSize + (64 << 10)
		if fixed >= c.Size {
			fixed = c.Size / 2 // let allocator construction report the overflow
		}
		per := (c.Size - fixed) * 9 / 10 / 5
		c.Classes = []SizeClass{
			{BlockSize: 64, Count: max64(per/64, 64)},
			{BlockSize: 128, Count: max64(per/128, 32)},
			{BlockSize: 256, Count: max64(per/256, 16)},
			{BlockSize: 1024, Count: max64(per/1024, 16)},
			{BlockSize: 4096, Count: max64(per/4096, 8)},
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Store assembles the full system: simulated NVRAM device, persistent
// allocator, PMwCAS descriptor pool, a root directory for anchoring
// application structures, and regions for the indexes. Its layout is a
// pure function of Config, which is what makes recovery possible: after
// a crash, opening the same device with the same Config finds every
// structure where it was.
type Store struct {
	cfg   Config
	dev   *nvram.Device
	pool  *core.Pool
	alloc *alloc.Allocator

	rootsRegion   nvram.Region // skip list anchors + application roots
	mapRegion     nvram.Region // Bw-tree mapping table
	metaRegion    nvram.Region // Bw-tree meta line
	blobRegion    nvram.Region // blob KV staging slots
	hashRegion    nvram.Region // hash table anchor line
	hashDirRegion nvram.Region // hash table directory
	poolRegion    nvram.Region
	allocRegion   nvram.Region
}

// Create builds a fresh store on a new simulated device.
func Create(cfg Config) (*Store, error) {
	cfg.fill()
	opts := []nvram.Option{}
	if cfg.FlushLatency > 0 {
		opts = append(opts, nvram.WithFlushLatency(cfg.FlushLatency))
	}
	if cfg.EvictEvery > 0 {
		opts = append(opts, nvram.WithEviction(cfg.EvictEvery))
	}
	if cfg.EvictSeed != 0 {
		opts = append(opts, nvram.WithEvictionSeed(cfg.EvictSeed))
	}
	if cfg.YieldEvery > 0 {
		opts = append(opts, nvram.WithYield(cfg.YieldEvery))
	}
	return assemble(nvram.New(cfg.Size, opts...), cfg, false)
}

// OpenDevice wraps an existing device (for example, one that just
// crashed, or was restored from a snapshot) and, in Persistent mode,
// runs allocator and PMwCAS recovery.
func OpenDevice(dev *nvram.Device, cfg Config) (*Store, error) {
	cfg.fill()
	if dev.Size() < cfg.Size {
		return nil, fmt.Errorf("pmwcas: device holds %d bytes, config requires %d", dev.Size(), cfg.Size)
	}
	return assemble(dev, cfg, cfg.Mode == Persistent)
}

// OpenFile restores a store from a snapshot file written by Checkpoint
// and runs recovery. The Config must match the one the snapshot was
// created with.
func OpenFile(path string, cfg Config) (*Store, error) {
	cfg.fill()
	opts := []nvram.Option{}
	if cfg.FlushLatency > 0 {
		opts = append(opts, nvram.WithFlushLatency(cfg.FlushLatency))
	}
	dev := nvram.New(cfg.Size, opts...)
	if err := dev.LoadFile(path); err != nil {
		return nil, err
	}
	return assemble(dev, cfg, true)
}

func assemble(dev *nvram.Device, cfg Config, recover bool) (*Store, error) {
	s := &Store{cfg: cfg, dev: dev}
	l := nvram.NewLayout(dev)
	s.poolRegion = l.Carve(core.PoolSize(cfg.Descriptors, cfg.WordsPerDescriptor))
	s.allocRegion = l.Carve(alloc.MetaSize(cfg.Classes, cfg.MaxHandles))
	s.rootsRegion = l.Carve(nvram.LineBytes * 4) // 32 root words
	s.mapRegion = l.Carve(cfg.BwTreeMappingSlots * nvram.WordSize)
	s.metaRegion = l.Carve(nvram.LineBytes)
	s.blobRegion = l.Carve(blobkv.StagingWords(cfg.MaxHandles) * nvram.WordSize)
	// Hash table regions come last so their addition leaves every earlier
	// region — and thus every pre-existing durable image — where it was.
	s.hashRegion = l.Carve(nvram.LineBytes)
	s.hashDirRegion = l.Carve(cfg.HashDirSlots * nvram.WordSize)

	var err error
	s.alloc, err = alloc.New(dev, s.allocRegion, cfg.Classes, cfg.MaxHandles)
	if err != nil {
		return nil, fmt.Errorf("pmwcas: allocator: %w", err)
	}
	if recover {
		s.alloc.Recover()
	}
	s.pool, err = core.NewPool(core.Config{
		Device:             dev,
		Region:             s.poolRegion,
		DescriptorCount:    cfg.Descriptors,
		WordsPerDescriptor: cfg.WordsPerDescriptor,
		Mode:               cfg.Mode,
		Allocator:          s.alloc,
	})
	if err != nil {
		return nil, fmt.Errorf("pmwcas: pool: %w", err)
	}
	// Finalize callbacks must exist before recovery replays descriptors.
	bwtree.RegisterRecoveryCallbacks(s.pool, s.alloc)
	if recover {
		if _, err := s.pool.Recover(); err != nil {
			return nil, fmt.Errorf("pmwcas: recovery: %w", err)
		}
	}
	return s, nil
}

// Device exposes the simulated NVRAM device (stats, crash injection).
func (s *Store) Device() *Device { return s.dev }

// Epochs exposes the store-wide epoch manager.
func (s *Store) Epochs() *EpochManager { return s.pool.Epochs() }

// PoolStats returns the PMwCAS pool's activity counters.
func (s *Store) PoolStats() PoolStats { return s.pool.Stats() }

// StoreStats is a cross-layer observability snapshot: PMwCAS descriptor
// activity, epoch-reclamation progress, allocator occupancy, and device
// flush counts in one read. It is what the server's STATS command
// reports; all counters are cumulative since store creation.
type StoreStats struct {
	// Pool counts PMwCAS descriptor activity (allocations, helps,
	// successes/failures, reads that helped).
	Pool PoolStats
	// Epoch counts epoch clock advances and deferred/freed garbage.
	Epoch EpochStats
	// Descriptor pool occupancy.
	DescriptorsFree int
	DescriptorsCap  int
	// Data-heap occupancy (allocated vs total capacity).
	AllocBlocks, AllocBytes       uint64
	AllocCapBlocks, AllocCapBytes uint64
	// Device holds the NVRAM operation counters (loads, stores, flushes,
	// fences, crashes).
	Device DeviceStats
}

// Stats gathers a StoreStats snapshot. Counters are read individually
// without a global lock, so a snapshot taken under load is approximate —
// internally consistent enough for monitoring, not a linearizable cut.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Pool:            s.pool.Stats(),
		Epoch:           s.pool.Epochs().Stats(),
		DescriptorsFree: s.pool.FreeDescriptors(),
		DescriptorsCap:  s.pool.Capacity(),
		Device:          s.dev.Stats(),
	}
	st.AllocBlocks, st.AllocBytes = s.alloc.InUse()
	st.AllocCapBlocks, st.AllocCapBytes = s.alloc.Capacity()
	return st
}

// Close quiesces the store: the epoch clock is advanced and every
// deferred reclamation runs, so all recycled descriptors and blocks are
// durably finalized. Every handle must be idle — no operation in flight,
// no guard held (Close panics otherwise, exactly like EpochManager.Drain).
// The store must not be used after Close; for persistent stores, follow
// with Checkpoint to capture the quiesced image.
func (s *Store) Close() error {
	s.pool.Epochs().Drain()
	return nil
}

// Mode returns the store's persistence mode.
func (s *Store) Mode() Mode { return s.cfg.Mode }

// PMwCASHandle returns a per-goroutine handle for issuing raw PMwCAS
// operations and reads.
func (s *Store) PMwCASHandle() *Handle { return s.pool.NewHandle() }

// RegisterCallback installs a finalize callback (paper §5.2). IDs 1-15
// are reserved by the library's own structures; applications should use
// 16 and above.
func (s *Store) RegisterCallback(id uint16, fn FinalizeFunc) error {
	return s.pool.RegisterCallback(id, fn)
}

// RootWords is the number of application root slots in the store.
const RootWords = 16

// RootWord returns the offset of application root slot i. Roots are
// durable words at fixed offsets — the anchors from which persistent
// structures are found again after a restart. Slots are application-
// owned; slot assignments must be stable across versions of the
// application. (The first half of the root region is reserved for the
// library's own indexes.)
func (s *Store) RootWord(i int) Offset {
	if i < 0 || i >= RootWords {
		panic(fmt.Sprintf("pmwcas: root slot %d out of range [0,%d)", i, RootWords))
	}
	return s.rootsRegion.Base + nvram.LineBytes*2 + nvram.Offset(i)*nvram.WordSize
}

// Alloc reserves a block of at least size bytes and durably delivers its
// offset into the target word (paper §5.2); see Store.RootWord for
// stable targets. Most callers want ReserveEntry on a descriptor
// instead; this direct form exists for application root structures.
func (s *Store) Alloc(size uint64, target Offset) (Offset, error) {
	return s.alloc.NewHandle().Alloc(size, target)
}

// Free releases a block previously delivered by Alloc or a descriptor
// reservation. The caller must guarantee no thread can still reach it
// (use Epochs().Defer for lock-free structures).
func (s *Store) Free(block Offset) error { return s.alloc.Free(block) }

// MemoryInUse reports allocated (blocks, bytes) on the data heap.
func (s *Store) MemoryInUse() (blocks, bytes uint64) { return s.alloc.InUse() }

// SkipList opens the store's skip list, creating it on first use. The
// list is a singleton per store (anchored at fixed roots).
func (s *Store) SkipList() (*SkipList, error) {
	return skiplist.New(skiplist.Config{
		Pool:      s.pool,
		Allocator: s.alloc,
		Roots:     nvram.Region{Base: s.rootsRegion.Base, Len: nvram.LineBytes},
	})
}

// CASSkipList creates a fresh volatile baseline skip list sharing the
// store's device and allocator (for benchmarking against).
func (s *Store) CASSkipList() (*CASSkipList, error) {
	if s.cfg.Mode != Volatile {
		return nil, errors.New("pmwcas: the CAS baseline skip list requires a Volatile store")
	}
	return skiplist.NewCAS(s.dev, s.alloc, s.pool.Epochs())
}

// BwTreeOptions tunes the store's Bw-tree.
type BwTreeOptions struct {
	// SMO selects the structure-modification protocol (default SMOPMwCAS).
	SMO SMOMode
	// LeafCapacity / InnerCapacity bound page sizes (default 64).
	LeafCapacity  int
	InnerCapacity int
	// ConsolidateAfter is the chain length that triggers consolidation
	// (default 8).
	ConsolidateAfter int
	// MergeBelow, if > 0, merges leaves that shrink under it (SMOPMwCAS
	// only).
	MergeBelow int
}

// Queue opens the store's persistent lock-free FIFO queue, creating it
// on first use. Singleton per store (fixed anchor words).
func (s *Store) Queue() (*Queue, error) {
	return pqueue.New(pqueue.Config{
		Pool:      s.pool,
		Allocator: s.alloc,
		Roots:     nvram.Region{Base: s.rootsRegion.Base + nvram.LineBytes, Len: nvram.LineBytes},
	})
}

// BlobKV opens the store's byte-string key-value layer over the skip
// list: short string keys, arbitrary-length values in out-of-line
// records, crash-atomic updates. Singleton per store.
func (s *Store) BlobKV() (*BlobKV, error) {
	list, err := s.SkipList()
	if err != nil {
		return nil, err
	}
	// Each blobkv handle consumes a skip list and an allocator handle, so
	// only a quarter of the store's handle budget is exposed here.
	n := s.cfg.MaxHandles / 4
	if n < 1 {
		n = 1
	}
	return blobkv.Open(blobkv.Config{
		List:       list,
		Allocator:  s.alloc,
		Device:     s.dev,
		Staging:    s.blobRegion,
		MaxHandles: n,
	})
}

// BwTree opens the store's Bw-tree, creating it on first use. The tree
// is a singleton per store (fixed mapping table region).
func (s *Store) BwTree(opts BwTreeOptions) (*BwTree, error) {
	return bwtree.New(bwtree.Config{
		Pool:             s.pool,
		Allocator:        s.alloc,
		Mapping:          s.mapRegion,
		Meta:             s.metaRegion,
		SMO:              opts.SMO,
		LeafCapacity:     opts.LeafCapacity,
		InnerCapacity:    opts.InnerCapacity,
		ConsolidateAfter: opts.ConsolidateAfter,
		MergeBelow:       opts.MergeBelow,
	})
}

// HashTableOptions tunes the store's hash table.
type HashTableOptions struct {
	// SlotsPerBucket is the fixed bucket capacity (default
	// hashtable.DefaultSlotsPerBucket, a four-line bucket). An existing
	// table's durable geometry must match.
	SlotsPerBucket int
}

// HashTable opens the store's persistent lock-free hash table — the
// point-lookup index — creating it on first use. Singleton per store
// (fixed anchor line and directory region).
func (s *Store) HashTable(opts HashTableOptions) (*HashTable, error) {
	return hashtable.New(hashtable.Config{
		Pool:           s.pool,
		Allocator:      s.alloc,
		Roots:          s.hashRegion,
		Dir:            s.hashDirRegion,
		SlotsPerBucket: opts.SlotsPerBucket,
	})
}

// Crash simulates a power failure: every cache line that was not written
// back is lost. The caller must guarantee quiescence (no in-flight
// operations), exactly as a real power failure stops all CPUs. Follow
// with Recover (or reopen via OpenDevice) before using the store again.
func (s *Store) Crash() error {
	if s.cfg.Mode != Persistent {
		return errors.New("pmwcas: Crash on a volatile store loses everything by definition")
	}
	s.dev.Crash()
	return nil
}

// Recover reruns allocator and PMwCAS recovery on this store after a
// Crash. Application finalize callbacks must already be registered.
// Equivalent to (and interchangeable with) reopening via OpenDevice.
func (s *Store) Recover() (RecoveryStats, error) {
	if s.cfg.Mode != Persistent {
		return RecoveryStats{}, errors.New("pmwcas: Recover on a volatile store")
	}
	// Rebuild the allocator's volatile state, then replay deliveries and
	// descriptors.
	a, err := alloc.New(s.dev, s.allocRegion, s.cfg.Classes, s.cfg.MaxHandles)
	if err != nil {
		return RecoveryStats{}, err
	}
	a.Recover()
	pool, err := core.NewPool(core.Config{
		Device:             s.dev,
		Region:             s.poolRegion,
		DescriptorCount:    s.cfg.Descriptors,
		WordsPerDescriptor: s.cfg.WordsPerDescriptor,
		Mode:               s.cfg.Mode,
		Allocator:          a,
	})
	if err != nil {
		return RecoveryStats{}, err
	}
	bwtree.RegisterRecoveryCallbacks(pool, a)
	st, err := pool.Recover()
	if err != nil {
		return st, err
	}
	// Swap in the recovered substrates, then poison the old ones. Handles,
	// guards, and index objects minted before the crash still reference the
	// old pool and allocator; letting them operate would silently corrupt
	// the recovered state (stale free lists, stale epoch clock, descriptors
	// the new pool believes are Free). Poisoning turns any such use into an
	// immediate panic naming the recovery that invalidated it.
	oldPool, oldAlloc := s.pool, s.alloc
	s.alloc, s.pool = a, pool
	oldPool.Poison("Store.Recover replaced this pool; re-mint handles from the store")
	oldAlloc.Poison("Store.Recover replaced this allocator; re-mint handles from the store")
	return st, nil
}

// Checkpoint writes the durable image to a file. The snapshot is
// crash-consistent: restoring it with OpenFile is equivalent to a power
// failure at the moment of the checkpoint, repaired by recovery.
func (s *Store) Checkpoint(path string) error { return s.dev.SaveFile(path) }

// CheckOptions tunes Store.CheckInvariants.
type CheckOptions struct {
	// Blob additionally validates skip list values as blob-KV records and
	// scans the blob staging slots. Set it whenever the store's skip list
	// is used through BlobKV — without it the list's values are opaque
	// integers and staged blob records would read as allocator leaks.
	Blob bool
}

// DurableState is the logical content CheckInvariants extracted from the
// durable image — the ground truth a durable-linearizability oracle
// compares against.
type DurableState struct {
	SkipList []SkipListEntry
	BwTree   []BwTreeEntry
	Hash     []HashEntry       // unspecified order
	Queue    []uint64          // FIFO order
	Blobs    map[string][]byte // only populated with CheckOptions.Blob
}

// CheckInvariants audits the whole store against its structural
// invariants. It must run on a quiescent, freshly recovered store (right
// after OpenDevice/OpenFile/Recover, before any new operation): it reads
// the raw image, so concurrent mutators would race it, and it asserts the
// post-recovery ground state of the descriptor pool.
//
// Layers checked, in order: the descriptor pool (every descriptor durably
// Free, count zero, on the free list), each index's structural invariants
// (see skiplist.Check, bwtree.Check, pqueue.Check, blobkv.Check), and
// finally the allocator bitmap against the union of every block the
// indexes reach — a block allocated but unreachable is a leak, a block
// reachable but not allocated is dangling.
func (s *Store) CheckInvariants(opt CheckOptions) (*DurableState, error) {
	if err := s.pool.CheckRecovered(); err != nil {
		return nil, err
	}
	st := &DurableState{}
	var reachable []Offset

	skipRoots := nvram.Region{Base: s.rootsRegion.Base, Len: nvram.LineBytes}
	blocks, entries, err := skiplist.Check(s.dev, skipRoots)
	if err != nil {
		return nil, err
	}
	reachable = append(reachable, blocks...)
	st.SkipList = entries

	qRoots := nvram.Region{Base: s.rootsRegion.Base + nvram.LineBytes, Len: nvram.LineBytes}
	blocks, values, err := pqueue.Check(s.dev, qRoots)
	if err != nil {
		return nil, err
	}
	reachable = append(reachable, blocks...)
	st.Queue = values

	blocks, tentries, err := bwtree.Check(s.dev, s.mapRegion, s.metaRegion)
	if err != nil {
		return nil, err
	}
	reachable = append(reachable, blocks...)
	st.BwTree = tentries

	blocks, hentries, err := hashtable.Check(s.dev, s.hashRegion, s.hashDirRegion)
	if err != nil {
		return nil, err
	}
	reachable = append(reachable, blocks...)
	st.Hash = hentries

	if opt.Blob {
		n := s.cfg.MaxHandles / 4
		if n < 1 {
			n = 1
		}
		blocks, blobs, err := blobkv.Check(s.dev, s.alloc, s.blobRegion, n, st.SkipList)
		if err != nil {
			return nil, err
		}
		reachable = append(reachable, blocks...)
		st.Blobs = blobs
	}

	if err := s.alloc.CheckInUse(reachable); err != nil {
		return nil, err
	}
	return st, nil
}
