package pmwcas

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pmwcas/internal/nvram"
)

func testRecoverConfig() Config {
	return Config{Size: 1 << 19, Descriptors: 64, MaxHandles: 8, BwTreeMappingSlots: 1 << 10}
}

// TestRecoverPoisonsStaleHandles: Store.Recover swaps in a freshly
// recovered allocator and descriptor pool. Handles minted before the
// crash still point at the replaced substrates; using one must panic
// loudly instead of silently corrupting the recovered state.
func TestRecoverPoisonsStaleHandles(t *testing.T) {
	st, err := Create(testRecoverConfig())
	if err != nil {
		t.Fatal(err)
	}
	list, err := st.SkipList()
	if err != nil {
		t.Fatal(err)
	}
	stale := list.NewHandle(1)
	if err := stale.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("stale pre-crash handle operated on the recovered store without panicking")
			}
			if !strings.Contains(fmt.Sprint(r), "poisoned") {
				t.Fatalf("stale handle panicked with %v, want a poisoned-substrate panic", r)
			}
		}()
		_ = stale.Insert(2, 20)
	}()

	// The poisoned stale handle never touched the recovered image: the
	// store still passes the freshly-recovered audit.
	if _, err := st.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}

	// Re-minted handles see the recovered contents and work normally.
	list2, err := st.SkipList()
	if err != nil {
		t.Fatal(err)
	}
	fresh := list2.NewHandle(2)
	if got, err := fresh.Get(1); err != nil || got != 10 {
		t.Fatalf("Get(1) after recovery = %d, %v; want 10", got, err)
	}
	if err := fresh.Insert(2, 20); err != nil {
		t.Fatalf("Insert on re-minted handle: %v", err)
	}
}

// TestRecoverMatchesOpenDevice: in-place Store.Recover and reopening the
// crashed image via OpenDevice are documented as interchangeable. This
// compares the two durable images byte for byte after recovering the
// same crash.
func TestRecoverMatchesOpenDevice(t *testing.T) {
	cfg := testRecoverConfig()
	st, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	list, err := st.SkipList()
	if err != nil {
		t.Fatal(err)
	}
	h := list.NewHandle(1)
	for i := 1; i <= 40; i++ {
		if err := h.Insert(uint64(i), uint64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 40; i += 3 {
		if err := h.Delete(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	q, err := st.Queue()
	if err != nil {
		t.Fatal(err)
	}
	qh := q.NewHandle()
	for i := 1; i <= 10; i++ {
		if err := qh.Enqueue(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := qh.Dequeue(); err != nil {
		t.Fatal(err)
	}
	if err := st.Crash(); err != nil {
		t.Fatal(err)
	}

	// Capture the crashed image before any recovery touches it.
	var pre bytes.Buffer
	if err := st.Device().WriteSnapshot(&pre); err != nil {
		t.Fatal(err)
	}

	// Path A: recover in place.
	if _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	var imgA bytes.Buffer
	if err := st.Device().WriteSnapshot(&imgA); err != nil {
		t.Fatal(err)
	}

	// Path B: restore the crashed image onto a fresh device and reopen.
	dev2 := nvram.New(cfg.Size)
	if err := dev2.ReadSnapshot(bytes.NewReader(pre.Bytes())); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenDevice(dev2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var imgB bytes.Buffer
	if err := dev2.WriteSnapshot(&imgB); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(imgA.Bytes(), imgB.Bytes()) {
		a, b := imgA.Bytes(), imgB.Bytes()
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("recovered images diverge at byte %#x: in-place %#x, OpenDevice %#x", i, a[i], b[i])
			}
		}
		t.Fatalf("recovered images differ in length: %d vs %d", len(a), len(b))
	}

	// Both recovered stores pass the whole-store audit and agree on
	// contents.
	dsA, err := st.CheckInvariants(CheckOptions{})
	if err != nil {
		t.Fatalf("in-place CheckInvariants: %v", err)
	}
	dsB, err := st2.CheckInvariants(CheckOptions{})
	if err != nil {
		t.Fatalf("OpenDevice CheckInvariants: %v", err)
	}
	if len(dsA.SkipList) != len(dsB.SkipList) || len(dsA.Queue) != len(dsB.Queue) {
		t.Fatalf("recovered contents disagree: %d/%d list entries, %d/%d queued",
			len(dsA.SkipList), len(dsB.SkipList), len(dsA.Queue), len(dsB.Queue))
	}
}
